// Package server implements slacksimd, the simulation-as-a-service HTTP
// layer over the slacksim engine. It composes the service subsystem:
//
//   - a bounded job queue (internal/service/jobqueue) providing admission
//     control — a full queue rejects with 429 + Retry-After so clients
//     back off instead of piling work onto the host;
//   - a content-addressed result cache (internal/service/resultcache)
//     keyed by spec.Key, so identical runs are served without
//     re-simulating, plus single-flight coalescing so N concurrent
//     identical submissions share one engine run;
//   - a worker pool (default GOMAXPROCS) that executes runs through the
//     public slacksim API with the stall watchdog armed, streaming the
//     engine's progress hook out to SSE subscribers;
//   - graceful drain: on SIGTERM the daemon stops admission, finishes
//     every accepted job, and only then exits, so no result is dropped.
//
// API (all JSON):
//
//	POST   /v1/jobs            submit a run spec; 202 + job, 200 on cache hit,
//	                           429 + Retry-After on a full queue
//	GET    /v1/jobs/{id}       job status, including the result when done
//	GET    /v1/jobs/{id}/events  SSE: progress events, then one terminal event
//	DELETE /v1/jobs/{id}       cancel (pending: immediate; running: interrupt)
//	POST   /v1/jobs/{id}/migrate   checkpoint-migrate: stop the run at its next
//	                           checkpoint and export its state (job → "migrated")
//	GET    /v1/jobs/{id}/snapshot  fetch a migrated job's exported state
//	POST   /v1/resume          submit an exported snapshot; the run continues
//	                           from its checkpoint instead of starting over
//	POST   /v1/evacuate        migrate every running job and eject every
//	                           pending one (a dying worker hands off its work)
//	GET    /v1/healthz         liveness ("ok", or "draining" with 503)
//	GET    /v1/statsz          queue/cache/worker counters
//	GET    /metrics            the same counters in Prometheus text format
//
// With Config.Cache backed by a persistent store and Config.Journal set,
// the daemon is crash-recoverable: results survive restarts, and jobs
// journaled as accepted are re-enqueued by Recover on the next start.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"slacksim"
	"slacksim/internal/durable"
	"slacksim/internal/promtext"
	"slacksim/internal/service/jobqueue"
	"slacksim/internal/service/resultcache"
	"slacksim/internal/spec"
)

// RunContext hands a worker everything it needs to execute one job.
type RunContext struct {
	// JobID identifies the job being executed, so runners that keep
	// per-job state (the fleet coordinator's attempt history) can key it.
	JobID string
	// Spec is the normalized run spec.
	Spec spec.Spec
	// Interrupt cancels the run mid-flight when set true.
	Interrupt *atomic.Bool
	// OnProgress receives the engine's monotone progress snapshots.
	OnProgress func(slacksim.Progress)
	// ProgressEvery is the minimum cycle advance between snapshots.
	ProgressEvery int64
	// StallTimeout arms the parallel host's stall watchdog.
	StallTimeout time.Duration
	// SnapshotRequest, when set true, asks the run to export its state at
	// the next checkpoint boundary and stop (live migration).
	SnapshotRequest *atomic.Bool
	// OnSnapshot receives the exported state as a durable snapshot
	// container (spec + engine state, CRC-framed).
	OnSnapshot func(blob []byte)
	// Resume, when non-empty, is a durable snapshot container to continue
	// from instead of starting the run from the beginning.
	Resume []byte
}

// Runner executes one simulation. The default is RealRunner; tests
// substitute a gated fake to exercise queueing deterministically.
type Runner func(rc RunContext) (*slacksim.Results, error)

// RealRunner builds and runs the simulation through the public slacksim
// API, then verifies the workload's functional result when supported, so
// a run that silently corrupted target memory fails its job instead of
// poisoning the cache.
func RealRunner(rc RunContext) (*slacksim.Results, error) {
	cfg, err := rc.Spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.OnProgress = rc.OnProgress
	cfg.ProgressEvery = rc.ProgressEvery
	cfg.Interrupt = rc.Interrupt
	cfg.StallTimeout = rc.StallTimeout
	cfg.SnapshotRequest = rc.SnapshotRequest
	if rc.OnSnapshot != nil {
		onSnap := rc.OnSnapshot
		sp := rc.Spec
		cfg.OnSnapshot = func(state []byte) {
			if blob, err := durable.EncodeSnapshot(sp, state); err == nil {
				onSnap(blob)
			}
		}
	}
	sim, err := slacksim.New(cfg)
	if err != nil {
		return nil, err
	}
	var res slacksim.Results
	if len(rc.Resume) > 0 {
		snap, err := durable.DecodeSnapshot(rc.Resume)
		if err != nil {
			return nil, err
		}
		if snap.Key != rc.Spec.Key() {
			return nil, fmt.Errorf("snapshot is for spec %s, job is %s", snap.Key, rc.Spec.Key())
		}
		res, err = sim.Resume(snap.Engine)
		if err != nil {
			return nil, err
		}
	} else {
		res, err = sim.Run()
		if err != nil {
			return nil, err
		}
	}
	if err := sim.Verify(); err != nil {
		return nil, fmt.Errorf("functional check failed: %w", err)
	}
	return &res, nil
}

// Config parameterizes a Server.
type Config struct {
	// QueueDepth bounds the pending FIFO (default 64).
	QueueDepth int
	// Workers sizes the pool (default runtime.GOMAXPROCS(0)).
	Workers int
	// CacheSize bounds the result cache (default 128 entries).
	CacheSize int
	// ProgressEvery throttles the per-job progress stream (default 256
	// cycles — fine-grained enough that even sub-second runs emit events).
	ProgressEvery int64
	// StallTimeout arms each run's stall watchdog (default 30s).
	StallTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ for live CPU and
	// heap profiling of a busy daemon. Off by default: the profile
	// endpoints expose internals and cost cycles when scraped.
	Pprof bool
	// Runner overrides run execution (default RealRunner; tests use a
	// gated fake, the fleet façade dispatches to remote workers).
	Runner Runner
	// Detail, when non-nil, is asked for extra per-job information to
	// embed in the job view (the fleet façade returns the job's
	// per-attempt dispatch history). A nil return adds nothing.
	Detail func(jobID string) any
	// Cache overrides the result cache (default: an in-memory LRU of
	// CacheSize entries). slacksimd -data passes a durable.ResultCache so
	// results survive restarts.
	Cache resultcache.Interface[*slacksim.Results]
	// Journal, when non-nil, receives every job lifecycle transition so a
	// restarted daemon can Recover the jobs it had accepted. slacksimd
	// -data passes a durable.Journal.
	Journal Journal
	// MaxSnapshots bounds retained migration snapshots (default 64; they
	// are transient handoff artifacts, fetched once by the peer).
	MaxSnapshots int
}

// Journal records job lifecycle transitions durably. durable.Journal
// implements it; JobSubmitted must be durable before returning so an
// acknowledged job is never forgotten.
type Journal interface {
	JobSubmitted(id, key string, sp spec.Spec)
	JobRunning(id string)
	JobFinished(id string, state jobqueue.State, errMsg string)
}

// nopJournal is the default Journal: a daemon without a data dir.
type nopJournal struct{}

func (nopJournal) JobSubmitted(string, string, spec.Spec)     {}
func (nopJournal) JobRunning(string)                          {}
func (nopJournal) JobFinished(string, jobqueue.State, string) {}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 256
	}
	if c.StallTimeout == 0 {
		c.StallTimeout = 30 * time.Second
	}
	if c.Runner == nil {
		c.Runner = RealRunner
	}
	if c.Cache == nil {
		c.Cache = resultcache.New[*slacksim.Results](c.CacheSize)
	}
	if c.Journal == nil {
		c.Journal = nopJournal{}
	}
	if c.MaxSnapshots <= 0 {
		c.MaxSnapshots = 64
	}
	return c
}

// Server is one slacksimd instance: queue + cache + worker pool + HTTP
// handlers. Create with New, serve Handler(), stop with Drain.
type Server struct {
	cfg   Config
	queue *jobqueue.Queue
	cache resultcache.Interface[*slacksim.Results]

	// mu guards the single-flight table: spec key → in-flight job.
	mu       sync.Mutex
	inflight map[string]*jobqueue.Job

	// interrupts maps job ID → the run's interrupt flag.
	imu        sync.Mutex
	interrupts map[string]*atomic.Bool

	// smu guards the migration state: per-job snapshot-request flags,
	// exported snapshots (bounded FIFO), and pending resume blobs.
	smu       sync.Mutex
	snapReqs  map[string]*atomic.Bool // guarded by smu
	snapshots map[string][]byte       // guarded by smu
	snapOrder []string                // guarded by smu
	resumes   map[string][]byte       // guarded by smu

	coalesced atomic.Uint64 // submissions attached to an in-flight run
	runs      atomic.Uint64 // engine runs actually executed
	resumed   atomic.Uint64 // runs continued from a snapshot
	recovered atomic.Uint64 // jobs re-enqueued from the journal
	draining  atomic.Bool
	start     time.Time
	wg        sync.WaitGroup
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:        cfg,
		queue:      jobqueue.New(cfg.QueueDepth),
		cache:      cfg.Cache,
		inflight:   make(map[string]*jobqueue.Job),
		interrupts: make(map[string]*atomic.Bool),
		snapReqs:   make(map[string]*atomic.Bool),
		snapshots:  make(map[string][]byte),
		resumes:    make(map[string][]byte),
		start:      time.Now(),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Recover re-enqueues the jobs a crashed daemon had accepted, as
// replayed from its journal: call it after New and before serving HTTP.
// Jobs whose results are already in the (persistent) cache are finished
// immediately without re-simulating; the rest run again from their spec
// — simulations are deterministic, so the results are identical to what
// the crashed run would have produced.
func (s *Server) Recover(pending []durable.PendingJob) int {
	n := 0
	for _, p := range pending {
		j, err := s.queue.Restore(p.ID, p.Key, p.Spec)
		if err != nil {
			continue
		}
		s.mu.Lock()
		if _, ok := s.inflight[p.Key]; !ok {
			s.inflight[p.Key] = j
		}
		s.mu.Unlock()
		s.imu.Lock()
		s.interrupts[j.ID] = new(atomic.Bool)
		s.imu.Unlock()
		s.smu.Lock()
		s.snapReqs[j.ID] = new(atomic.Bool)
		s.smu.Unlock()
		s.recovered.Add(1)
		n++
	}
	return n
}

// worker pulls jobs until the queue closes and drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, err := s.queue.Next()
		if err != nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one admitted job and retires it.
func (s *Server) runJob(j *jobqueue.Job) {
	sp := j.Payload.(spec.Spec)
	s.cfg.Journal.JobRunning(j.ID)

	// A recovered job may already have its result in the persistent
	// store (the crash hit between the result write and the journal's
	// terminal record); serve it without re-simulating.
	if res, ok := s.cache.Get(j.Key); ok {
		s.retire(j, res, nil)
		return
	}

	s.imu.Lock()
	intr := s.interrupts[j.ID]
	s.imu.Unlock()
	if intr == nil {
		intr = new(atomic.Bool)
	}
	s.smu.Lock()
	snapReq := s.snapReqs[j.ID]
	resume := s.resumes[j.ID]
	delete(s.resumes, j.ID)
	s.smu.Unlock()
	if snapReq == nil {
		snapReq = new(atomic.Bool)
	}
	if len(resume) > 0 {
		s.resumed.Add(1)
	}
	res, err := s.cfg.Runner(RunContext{
		JobID:           j.ID,
		Spec:            sp,
		Interrupt:       intr,
		OnProgress:      func(p slacksim.Progress) { j.Publish(p) },
		ProgressEvery:   s.cfg.ProgressEvery,
		StallTimeout:    s.cfg.StallTimeout,
		SnapshotRequest: snapReq,
		OnSnapshot:      func(blob []byte) { s.keepSnapshot(j.ID, blob) },
		Resume:          resume,
	})
	s.runs.Add(1)
	if err == nil {
		s.cache.Put(j.Key, res)
	}
	if errors.Is(err, slacksim.ErrInterrupted) {
		err = fmt.Errorf("%w: %v", jobqueue.ErrCancelled, err)
	}
	if errors.Is(err, slacksim.ErrSnapshotted) {
		err = fmt.Errorf("%w: state exported at checkpoint", jobqueue.ErrMigrated)
	}
	s.retire(j, res, err)
}

// retire releases a job's bookkeeping and finishes it.
func (s *Server) retire(j *jobqueue.Job, res *slacksim.Results, err error) {
	s.mu.Lock()
	if s.inflight[j.Key] == j {
		delete(s.inflight, j.Key)
	}
	s.mu.Unlock()
	s.imu.Lock()
	delete(s.interrupts, j.ID)
	s.imu.Unlock()
	s.smu.Lock()
	delete(s.snapReqs, j.ID)
	s.smu.Unlock()
	s.queue.Finish(j, res, err)
	s.cfg.Journal.JobFinished(j.ID, j.State(), j.Err())
}

// keepSnapshot retains one exported migration snapshot, evicting the
// oldest past the bound.
func (s *Server) keepSnapshot(jobID string, blob []byte) {
	s.smu.Lock()
	defer s.smu.Unlock()
	if _, ok := s.snapshots[jobID]; !ok {
		s.snapOrder = append(s.snapOrder, jobID)
		for len(s.snapOrder) > s.cfg.MaxSnapshots {
			delete(s.snapshots, s.snapOrder[0])
			s.snapOrder = s.snapOrder[1:]
		}
	}
	s.snapshots[jobID] = blob
}

// Drain gracefully stops the server: admission is closed (POST returns
// 503, healthz reports draining), every already-accepted job runs to
// completion, and the worker pool exits. It returns ctx's error if the
// deadline expires first — results of jobs finished by then are still
// retrievable.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.Close()
	if err := s.queue.Drain(ctx); err != nil {
		return err
	}
	s.wg.Wait()
	return nil
}

// jobView is the wire representation of a job.
type jobView struct {
	ID        string             `json:"id"`
	State     string             `json:"state"`
	Key       string             `json:"key"`
	Spec      spec.Spec          `json:"spec"`
	Cached    bool               `json:"cached,omitempty"`
	Coalesced bool               `json:"coalesced,omitempty"`
	Progress  *slacksim.Progress `json:"progress,omitempty"`
	Result    *slacksim.Results  `json:"result,omitempty"`
	Error     string             `json:"error,omitempty"`
	// Detail carries runner-specific extras (the fleet façade's
	// per-attempt dispatch history).
	Detail any `json:"detail,omitempty"`
}

func (s *Server) view(j *jobqueue.Job, cached, coalesced bool) jobView {
	v := jobView{
		ID:        j.ID,
		State:     j.State().String(),
		Key:       j.Key,
		Spec:      j.Payload.(spec.Spec),
		Cached:    cached,
		Coalesced: coalesced,
	}
	if s.cfg.Detail != nil {
		v.Detail = s.cfg.Detail(j.ID)
	}
	if p, ok := j.LastEvent().(slacksim.Progress); ok {
		v.Progress = &p
	}
	if j.State().Terminal() {
		if res, err := j.Result(); err != nil {
			v.Error = err.Error()
		} else if r, ok := res.(*slacksim.Results); ok {
			v.Result = r
		}
	}
	return v
}

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/jobs/{id}/migrate", s.handleMigrate)
	mux.HandleFunc("GET /v1/jobs/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/resume", s.handleResume)
	mux.HandleFunc("POST /v1/evacuate", s.handleEvacuate)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Pprof {
		// net/http/pprof registers only on http.DefaultServeMux; route the
		// prefix to its index handler, which dispatches to the others.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// handleSubmit admits one run spec: cache hit → an immediately-done job;
// identical run in flight → coalesce onto it; otherwise enqueue, or 429
// with Retry-After when the queue is full.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var sp spec.Spec
	if err := json.NewDecoder(r.Body).Decode(&sp); err != nil {
		writeErr(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	sp = sp.Normalize()
	if err := sp.Validate(); err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	key := sp.Key()

	// The single-flight window: cache lookup, coalesce check, and enqueue
	// must be atomic or two identical concurrent submissions both miss.
	s.mu.Lock()
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		j := s.queue.AddDone(key, sp, res)
		writeJSON(w, http.StatusOK, s.view(j, true, false))
		return
	}
	if j, ok := s.inflight[key]; ok {
		s.coalesced.Add(1)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, s.view(j, false, true))
		return
	}
	j, err := s.queue.Submit(key, sp)
	if err != nil {
		s.mu.Unlock()
		if errors.Is(err, jobqueue.ErrFull) {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "queue full (depth %d); retry later", s.cfg.QueueDepth)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.inflight[key] = j
	s.mu.Unlock()
	s.admit(j.ID)
	s.cfg.Journal.JobSubmitted(j.ID, key, sp)
	writeJSON(w, http.StatusAccepted, s.view(j, false, false))
}

// admit registers a freshly-enqueued job's interrupt and
// snapshot-request flags.
func (s *Server) admit(id string) {
	s.imu.Lock()
	s.interrupts[id] = new(atomic.Bool)
	s.imu.Unlock()
	s.smu.Lock()
	s.snapReqs[id] = new(atomic.Bool)
	s.smu.Unlock()
}

// maxSnapshotBody bounds POST /v1/resume bodies (a snapshot is the full
// serialized machine state, so allow a generous but finite size).
const maxSnapshotBody = 256 << 20

// handleResume admits a run continued from an exported snapshot. The
// snapshot container carries the spec; if the result is already cached
// the job completes immediately, and an identical run in flight is
// coalesced onto, exactly as for a fresh submission.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading snapshot: %v", err)
		return
	}
	snap, err := durable.DecodeSnapshot(blob)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad snapshot: %v", err)
		return
	}
	sp := snap.Spec
	key := snap.Key

	s.mu.Lock()
	if res, ok := s.cache.Get(key); ok {
		s.mu.Unlock()
		j := s.queue.AddDone(key, sp, res)
		writeJSON(w, http.StatusOK, s.view(j, true, false))
		return
	}
	if j, ok := s.inflight[key]; ok {
		s.coalesced.Add(1)
		s.mu.Unlock()
		writeJSON(w, http.StatusAccepted, s.view(j, false, true))
		return
	}
	j, err := s.queue.Submit(key, sp)
	if err != nil {
		s.mu.Unlock()
		if errors.Is(err, jobqueue.ErrFull) {
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "queue full (depth %d); retry later", s.cfg.QueueDepth)
			return
		}
		writeErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	s.inflight[key] = j
	s.mu.Unlock()
	s.admit(j.ID)
	s.smu.Lock()
	s.resumes[j.ID] = blob
	s.smu.Unlock()
	// Journaled like any admission: if the daemon crashes before the run
	// finishes, the recovered job restarts from its spec (the snapshot is
	// not persisted — determinism makes the restart merely slower, never
	// wrong).
	s.cfg.Journal.JobSubmitted(j.ID, key, sp)
	writeJSON(w, http.StatusAccepted, s.view(j, false, false))
}

// handleMigrate asks a job to stop at its next checkpoint and export its
// state. Pending jobs are ejected immediately (no state to export — the
// spec alone restarts them elsewhere); running jobs get their
// snapshot-request flag raised and report "migrated" once the engine
// reaches a checkpoint boundary; terminal jobs are left as they are.
func (s *Server) handleMigrate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.queue.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	switch err := s.queue.Eject(id); {
	case err == nil:
		s.mu.Lock()
		if s.inflight[j.Key] == j {
			delete(s.inflight, j.Key)
		}
		s.mu.Unlock()
		s.imu.Lock()
		delete(s.interrupts, id)
		s.imu.Unlock()
		s.smu.Lock()
		delete(s.snapReqs, id)
		s.smu.Unlock()
		s.cfg.Journal.JobFinished(id, jobqueue.Migrated, jobqueue.ErrMigrated.Error())
		writeJSON(w, http.StatusOK, s.view(j, false, false))
	case errors.Is(err, jobqueue.ErrNotCancellable) && j.State() == jobqueue.Running:
		s.smu.Lock()
		req := s.snapReqs[id]
		s.smu.Unlock()
		if req == nil {
			writeErr(w, http.StatusConflict, "job has no snapshot channel")
			return
		}
		req.Store(true)
		writeJSON(w, http.StatusAccepted, s.view(j, false, false))
	case errors.Is(err, jobqueue.ErrNotCancellable):
		writeJSON(w, http.StatusOK, s.view(j, false, false))
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

// handleSnapshot serves a migrated job's exported state.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.queue.Get(id); !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	s.smu.Lock()
	blob, ok := s.snapshots[id]
	s.smu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, "job has no exported snapshot")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(blob)
}

// handleEvacuate checkpoint-migrates the whole worker: every pending job
// is ejected and every running job is asked to export at its next
// checkpoint. The response lists the affected job ids; each job's
// snapshot (for jobs that were running) becomes fetchable as it lands.
func (s *Server) handleEvacuate(w http.ResponseWriter, r *http.Request) {
	var ejected, migrating []string
	s.mu.Lock()
	inflight := make([]*jobqueue.Job, 0, len(s.inflight))
	for _, j := range s.inflight {
		inflight = append(inflight, j)
	}
	s.mu.Unlock()
	for _, j := range inflight {
		switch err := s.queue.Eject(j.ID); {
		case err == nil:
			s.mu.Lock()
			if s.inflight[j.Key] == j {
				delete(s.inflight, j.Key)
			}
			s.mu.Unlock()
			s.imu.Lock()
			delete(s.interrupts, j.ID)
			s.imu.Unlock()
			s.smu.Lock()
			delete(s.snapReqs, j.ID)
			s.smu.Unlock()
			s.cfg.Journal.JobFinished(j.ID, jobqueue.Migrated, jobqueue.ErrMigrated.Error())
			ejected = append(ejected, j.ID)
		case errors.Is(err, jobqueue.ErrNotCancellable) && j.State() == jobqueue.Running:
			s.smu.Lock()
			req := s.snapReqs[j.ID]
			s.smu.Unlock()
			if req != nil {
				req.Store(true)
				migrating = append(migrating, j.ID)
			}
		}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"ejected":   ejected,
		"migrating": migrating,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(j, false, false))
}

// handleDelete cancels a job: pending jobs leave the queue immediately;
// running jobs get their engine interrupt raised and report "cancelling"
// until the run unwinds; terminal jobs are left as they are.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.queue.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	switch err := s.queue.Cancel(id); {
	case err == nil:
		// The job never reached a worker, so release its single-flight and
		// interrupt entries here (runJob would have done it otherwise).
		s.mu.Lock()
		if s.inflight[j.Key] == j {
			delete(s.inflight, j.Key)
		}
		s.mu.Unlock()
		s.imu.Lock()
		delete(s.interrupts, id)
		s.imu.Unlock()
		s.smu.Lock()
		delete(s.snapReqs, id)
		s.smu.Unlock()
		s.cfg.Journal.JobFinished(id, jobqueue.Cancelled, jobqueue.ErrCancelled.Error())
		writeJSON(w, http.StatusOK, s.view(j, false, false))
	case errors.Is(err, jobqueue.ErrNotCancellable) && j.State() == jobqueue.Running:
		s.imu.Lock()
		intr := s.interrupts[id]
		s.imu.Unlock()
		if intr != nil {
			intr.Store(true)
		}
		writeJSON(w, http.StatusAccepted, s.view(j, false, false))
	case errors.Is(err, jobqueue.ErrNotCancellable):
		// Already terminal; report the final state, idempotently.
		writeJSON(w, http.StatusOK, s.view(j, false, false))
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

// statsView is /v1/statsz's body.
type statsView struct {
	UptimeSeconds float64           `json:"uptime_s"`
	Workers       int               `json:"workers"`
	Draining      bool              `json:"draining"`
	Runs          uint64            `json:"runs"`
	Coalesced     uint64            `json:"coalesced"`
	Resumed       uint64            `json:"resumed,omitempty"`
	Recovered     uint64            `json:"recovered,omitempty"`
	Queue         jobqueue.Stats    `json:"queue"`
	Cache         resultcache.Stats `json:"cache"`
	// Store reports the persistent result store, when one backs the cache.
	Store *durable.StoreStats `json:"store,omitempty"`
}

// storeStatser is implemented by caches backed by a persistent store
// (durable.ResultCache); the server surfaces its stats when present.
type storeStatser interface {
	StoreStats() durable.StoreStats
}

func (s *Server) storeStats() *durable.StoreStats {
	if ss, ok := s.cache.(storeStatser); ok {
		st := ss.StoreStats()
		return &st
	}
	return nil
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, statsView{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Workers:       s.cfg.Workers,
		Draining:      s.draining.Load(),
		Runs:          s.runs.Load(),
		Coalesced:     s.coalesced.Load(),
		Resumed:       s.resumed.Load(),
		Recovered:     s.recovered.Load(),
		Queue:         s.queue.Stats(),
		Cache:         s.cache.Stats(),
		Store:         s.storeStats(),
	})
}

// WriteMetrics renders the service counters in the Prometheus text
// exposition format. The fleet coordinator scrapes exactly these names
// (queue depth, jobs in flight, capacity) for load-aware routing, and
// any metrics stack can scrape GET /metrics directly.
func (s *Server) WriteMetrics(w io.Writer) error {
	q := s.queue.Stats()
	ca := s.cache.Stats()
	p := promtext.NewWriter(w)
	p.Gauge("slacksimd_up", "whether the service is accepting work (0 while draining)", boolGauge(!s.draining.Load()))
	p.Gauge("slacksimd_uptime_seconds", "seconds since the service started", time.Since(s.start).Seconds())
	p.Gauge("slacksimd_workers", "size of the simulation worker pool", float64(s.cfg.Workers))
	p.Gauge("slacksimd_queue_depth", "pending jobs waiting for a worker", float64(q.Depth))
	p.Gauge("slacksimd_queue_capacity", "admission bound of the pending queue", float64(q.Capacity))
	p.Gauge("slacksimd_jobs_running", "jobs currently executing", float64(q.Running))
	p.Counter("slacksimd_jobs_submitted_total", "jobs admitted to the queue", float64(q.Submitted))
	p.Counter("slacksimd_jobs_rejected_total", "submissions rejected by backpressure", float64(q.Rejected))
	p.Counter("slacksimd_jobs_completed_total", "jobs finished successfully", float64(q.Done))
	p.Counter("slacksimd_jobs_failed_total", "jobs finished in error", float64(q.Failed))
	p.Counter("slacksimd_jobs_cancelled_total", "jobs cancelled before completion", float64(q.Cancelled))
	p.Counter("slacksimd_runs_total", "engine runs actually executed", float64(s.runs.Load()))
	p.Counter("slacksimd_coalesced_total", "submissions attached to an in-flight identical run", float64(s.coalesced.Load()))
	p.Gauge("slacksimd_result_cache_entries", "entries in the result cache", float64(ca.Entries))
	p.Gauge("slacksimd_result_cache_capacity", "capacity of the result cache", float64(ca.Capacity))
	p.Counter("slacksimd_result_cache_hits_total", "result cache hits", float64(ca.Hits))
	p.Counter("slacksimd_result_cache_misses_total", "result cache misses", float64(ca.Misses))
	p.Counter("slacksimd_result_cache_evictions_total", "result cache evictions", float64(ca.Evictions))
	p.Counter("slacksimd_jobs_migrated_total", "jobs checkpoint-migrated off this worker", float64(q.Migrated))
	p.Counter("slacksimd_jobs_restored_total", "jobs re-enqueued from the crash journal", float64(q.Restored))
	p.Counter("slacksimd_runs_resumed_total", "runs continued from a snapshot", float64(s.resumed.Load()))
	if st := s.storeStats(); st != nil {
		p.Gauge("slacksimd_store_entries", "keys in the persistent result store", float64(st.Entries))
		p.Gauge("slacksimd_store_segments", "immutable segment files in the store", float64(st.Segments))
		p.Gauge("slacksimd_store_wal_bytes", "bytes in the store's write-ahead log", float64(st.WALBytes))
		p.Counter("slacksimd_store_compactions_total", "WAL-to-segment compactions", float64(st.Compactions))
		p.Counter("slacksimd_store_torn_tails_total", "torn log tails truncated during recovery", float64(st.TornTails))
	}
	return p.Err()
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.WriteMetrics(w)
}

// handleEvents streams a job's progress as Server-Sent Events: zero or
// more "progress" events (the latest known snapshot is replayed on
// attach, so every subscriber sees at least one before completion of a
// live run) followed by exactly one terminal event named after the final
// state ("done", "failed", "cancelled") carrying the full job view.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.queue.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	send := func(event string, v any) {
		blob, err := json.Marshal(v)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, blob)
		fl.Flush()
	}

	// Subscribe before reading state so no event can slip between the
	// check and the subscription; replay the latest snapshot on attach.
	events, cancel := j.Subscribe(16)
	defer cancel()
	if p, ok := j.LastEvent().(slacksim.Progress); ok {
		send("progress", p)
	}
	for {
		select {
		case ev, ok := <-events:
			if !ok {
				// Terminal: emit the final event and end the stream.
				send(j.State().String(), s.view(j, false, false))
				return
			}
			if p, ok := ev.(slacksim.Progress); ok {
				send("progress", p)
			}
		case <-j.Done():
			// Drain any buffered progress, then terminate. The subscriber
			// channel closes shortly after Done; loop around to catch it.
			select {
			case ev, ok := <-events:
				if ok {
					if p, ok := ev.(slacksim.Progress); ok {
						send("progress", p)
					}
					continue
				}
			default:
			}
			send(j.State().String(), s.view(j, false, false))
			return
		case <-r.Context().Done():
			return
		}
	}
}
