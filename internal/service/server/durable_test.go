package server

import (
	"bytes"
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"slacksim"
	"slacksim/internal/durable"
	"slacksim/internal/service/jobqueue"
)

// snapRunner mimics the engine's migration contract without simulating:
// each run spins until either released or asked to snapshot, in which
// case it exports a valid durable container and returns ErrSnapshotted.
// Resumed runs observe their snapshot bytes and finish immediately.
type snapRunner struct {
	started chan string   // job ID each time a run begins
	release chan struct{} // lets a run finish normally

	mu      sync.Mutex
	resumed [][]byte // rc.Resume of each resumed run
}

func newSnapRunner() *snapRunner {
	return &snapRunner{started: make(chan string, 16), release: make(chan struct{}, 16)}
}

func (g *snapRunner) run(rc RunContext) (*slacksim.Results, error) {
	if len(rc.Resume) > 0 {
		g.mu.Lock()
		g.resumed = append(g.resumed, rc.Resume)
		g.mu.Unlock()
		return &slacksim.Results{Workload: rc.Spec.Workload, Cycles: 77, Committed: 7}, nil
	}
	g.started <- rc.JobID
	for {
		select {
		case <-g.release:
			return &slacksim.Results{Workload: rc.Spec.Workload, Cycles: 42, Committed: 4}, nil
		default:
		}
		if rc.Interrupt != nil && rc.Interrupt.Load() {
			return nil, slacksim.ErrInterrupted
		}
		if rc.SnapshotRequest != nil && rc.SnapshotRequest.Load() {
			blob, err := durable.EncodeSnapshot(rc.Spec, []byte("engine-state-"+rc.JobID))
			if err != nil {
				return nil, err
			}
			rc.OnSnapshot(blob)
			return nil, slacksim.ErrSnapshotted
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMigrateRunningJobExportsSnapshot(t *testing.T) {
	g := newSnapRunner()
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 8, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	j, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-g.started

	mj, err := c.Migrate(ctx, j.ID)
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if mj.ID != j.ID {
		t.Fatalf("migrate returned job %s, want %s", mj.ID, j.ID)
	}
	fin, err := c.Wait(ctx, j.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "migrated" {
		t.Fatalf("state = %s (%s), want migrated", fin.State, fin.Error)
	}

	blob, err := c.Snapshot(ctx, j.ID)
	if err != nil {
		t.Fatalf("snapshot fetch: %v", err)
	}
	snap, err := durable.DecodeSnapshot(blob)
	if err != nil {
		t.Fatalf("decode exported snapshot: %v", err)
	}
	if want := testSpec().Normalize().Key(); snap.Key != want {
		t.Fatalf("snapshot key = %s, want %s", snap.Key, want)
	}
	if !bytes.Equal(snap.Engine, []byte("engine-state-"+j.ID)) {
		t.Fatalf("snapshot engine state = %q", snap.Engine)
	}
}

func TestMigratePendingJobEjectsWithoutSnapshot(t *testing.T) {
	g := newSnapRunner()
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 8, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Occupy the single worker so the second job stays pending.
	blocker, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	sp2 := testSpec()
	sp2.Seed = 2
	j2, err := c.Submit(ctx, sp2)
	if err != nil {
		t.Fatal(err)
	}

	mj, err := c.Migrate(ctx, j2.ID)
	if err != nil {
		t.Fatalf("migrate pending: %v", err)
	}
	if mj.State != "migrated" {
		t.Fatalf("ejected job state = %s, want migrated", mj.State)
	}
	// No state was ever exported: the spec alone restarts it elsewhere.
	if _, err := c.Snapshot(ctx, j2.ID); err == nil {
		t.Fatal("snapshot of an ejected pending job should 404")
	}

	g.release <- struct{}{}
	if fin, err := c.Wait(ctx, blocker.ID, 5*time.Millisecond); err != nil || fin.State != "done" {
		t.Fatalf("blocker: %v %v", fin, err)
	}
}

func TestResumeRunsFromSnapshotAndCaches(t *testing.T) {
	g := newSnapRunner()
	s, c := startServer(t, Config{Workers: 2, QueueDepth: 8, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	blob, err := durable.EncodeSnapshot(testSpec(), []byte("exported-elsewhere"))
	if err != nil {
		t.Fatal(err)
	}
	j, err := c.Resume(ctx, blob)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	fin, err := c.Wait(ctx, j.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.Result == nil || fin.Result.Cycles != 77 {
		t.Fatalf("resumed job: %+v", fin)
	}
	g.mu.Lock()
	nResumed := len(g.resumed)
	ok := nResumed == 1 && bytes.Equal(g.resumed[0], blob)
	g.mu.Unlock()
	if !ok {
		t.Fatalf("runner saw %d resumes, want exactly the posted container", nResumed)
	}
	if got := s.resumed.Load(); got != 1 {
		t.Fatalf("resumed counter = %d, want 1", got)
	}

	// Resuming again after completion: the result is cached under the
	// spec key, so no second run starts.
	j2, err := c.Resume(ctx, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached || j2.Result == nil || j2.Result.Cycles != 77 {
		t.Fatalf("second resume should hit the cache: %+v", j2)
	}
}

func TestResumeRejectsGarbage(t *testing.T) {
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 4})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Resume(ctx, []byte("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestEvacuateEjectsPendingAndMigratesRunning(t *testing.T) {
	g := newSnapRunner()
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 8, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	running, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	sp2 := testSpec()
	sp2.Seed = 2
	pending, err := c.Submit(ctx, sp2)
	if err != nil {
		t.Fatal(err)
	}

	ejected, migrating, err := c.Evacuate(ctx)
	if err != nil {
		t.Fatalf("evacuate: %v", err)
	}
	if len(ejected) != 1 || ejected[0] != pending.ID {
		t.Fatalf("ejected = %v, want [%s]", ejected, pending.ID)
	}
	if len(migrating) != 1 || migrating[0] != running.ID {
		t.Fatalf("migrating = %v, want [%s]", migrating, running.ID)
	}

	fin, err := c.Wait(ctx, running.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "migrated" {
		t.Fatalf("running job after evacuate = %s, want migrated", fin.State)
	}
	if _, err := c.Snapshot(ctx, running.ID); err != nil {
		t.Fatalf("running job's snapshot should be fetchable: %v", err)
	}
	if pj, _ := c.Get(ctx, pending.ID); pj.State != "migrated" {
		t.Fatalf("pending job after evacuate = %s, want migrated", pj.State)
	}
}

// TestJournalRecoveryReRunsUnfinishedJobs is the crash-recovery loop at
// the server level: jobs journaled as admitted (one still pending, one
// orphaned mid-run) are re-enqueued by a fresh server on the same
// journal and produce the same results a crash-free run would have.
func TestJournalRecoveryReRunsUnfinishedJobs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.wal")
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	sp1 := testSpec()
	sp2 := testSpec()
	sp2.Seed = 9
	n1, n2 := sp1.Normalize(), sp2.Normalize()

	j1, pending, err := durable.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 {
		t.Fatalf("fresh journal has %d pending jobs", len(pending))
	}
	j1.JobSubmitted("j1", n1.Key(), n1)
	j1.JobSubmitted("j2", n2.Key(), n2)
	j1.JobRunning("j1") // orphaned mid-run at the "crash"
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: replay finds both jobs unfinished.
	j2, pending, err := durable.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if len(pending) != 2 {
		t.Fatalf("recovered %d pending jobs, want 2", len(pending))
	}

	s, c := startServer(t, Config{Workers: 2, QueueDepth: 8, Journal: j2})
	if n := s.Recover(pending); n != 2 {
		t.Fatalf("Recover = %d, want 2", n)
	}
	for _, id := range []string{"j1", "j2"} {
		fin, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if fin.State != "done" || fin.Result == nil || fin.Result.Committed == 0 {
			t.Fatalf("recovered job %s: %+v", id, fin)
		}
	}
	if got := s.recovered.Load(); got != 2 {
		t.Fatalf("recovered counter = %d, want 2", got)
	}
}

// TestRecoverServesPersistedResultWithoutRerun covers the crash window
// between the result landing in the persistent store and the journal's
// terminal record: the recovered job must be served from the store, not
// re-simulated.
func TestRecoverServesPersistedResultWithoutRerun(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	store, err := durable.OpenStore(filepath.Join(dir, "store"), durable.StoreOptions{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	cache := durable.NewResultCache(store, 16)

	s, c := startServer(t, Config{Workers: 2, QueueDepth: 8, Cache: cache})
	sp := testSpec()
	j, err := c.SubmitWait(ctx, sp, 5*time.Millisecond)
	if err != nil || j.State != "done" {
		t.Fatalf("seed run: %+v, %v", j, err)
	}
	if got := s.runs.Load(); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}

	// A second server on the same store recovers the job as if the crash
	// hit after the result write: no re-simulation, identical result.
	store2, err := durable.OpenStore(filepath.Join(dir, "store"), durable.StoreOptions{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	n := sp.Normalize()
	s2, c2 := startServer(t, Config{Workers: 2, QueueDepth: 8, Cache: durable.NewResultCache(store2, 16)})
	if got := s2.Recover([]durable.PendingJob{{ID: "j7", Key: n.Key(), Spec: n, WasRunning: true}}); got != 1 {
		t.Fatalf("Recover = %d, want 1", got)
	}
	fin, err := c2.Wait(ctx, "j7", 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "done" || fin.Result == nil {
		t.Fatalf("recovered job: %+v", fin)
	}
	if fin.Result.Cycles != j.Result.Cycles || fin.Result.Committed != j.Result.Committed {
		t.Fatalf("store-served result differs: %+v vs %+v", fin.Result, j.Result)
	}
	if got := s2.runs.Load(); got != 0 {
		t.Fatalf("recovered job re-simulated (runs = %d)", got)
	}
}

var _ Journal = (*durable.Journal)(nil)
var _ = jobqueue.Migrated
