package server

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/promtext"
	"slacksim/internal/spec"
)

func testSpec() spec.Spec {
	return spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: 1}
}

func startServer(t *testing.T, cfg Config) (*Server, *client.Client) {
	t.Helper()
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, client.NewWithHTTPClient(hs.URL, hs.Client())
}

// gatedRunner blocks each run until released, so tests control queue
// occupancy deterministically.
type gatedRunner struct {
	mu      sync.Mutex
	started chan string // receives the workload each time a run begins
	release chan struct{}
}

func newGatedRunner() *gatedRunner {
	return &gatedRunner{started: make(chan string, 16), release: make(chan struct{}, 16)}
}

func (g *gatedRunner) run(rc RunContext) (*slacksim.Results, error) {
	g.started <- rc.Spec.Workload
	rc.OnProgress(slacksim.Progress{Cycles: 1, Committed: 1, Counter: 1})
	<-g.release
	if rc.Interrupt != nil && rc.Interrupt.Load() {
		return nil, slacksim.ErrInterrupted
	}
	return &slacksim.Results{Workload: rc.Spec.Workload, Cycles: 42, Committed: 1}, nil
}

func TestSubmitRunFetchAndCacheHit(t *testing.T) {
	s, c := startServer(t, Config{Workers: 2, QueueDepth: 8, ProgressEvery: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	j, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if j.Cached || j.ID == "" {
		t.Fatalf("fresh submit: %+v", j)
	}
	fin, err := c.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != "done" || fin.Result == nil || fin.Result.Committed == 0 {
		t.Fatalf("bad terminal job: %+v", fin)
	}

	// Identical spec again: served from cache, no second engine run.
	j2, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if !j2.Cached || j2.Result == nil || j2.Result.Cycles != fin.Result.Cycles {
		t.Fatalf("expected cached result: %+v", j2)
	}
	if got := s.runs.Load(); got != 1 {
		t.Fatalf("engine runs = %d, want 1", got)
	}
	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatalf("statsz: %v", err)
	}
	cacheStats := st["cache"].(map[string]any)
	if hits := cacheStats["hits"].(float64); hits < 1 {
		t.Fatalf("statsz cache hits = %v, want >= 1", hits)
	}

	// A different spec is a different key and a fresh run.
	other := testSpec()
	other.Seed = 99
	j3, err := c.SubmitWait(ctx, other, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("other submit: %v", err)
	}
	if j3.Cached || j3.State != "done" {
		t.Fatalf("different seed should not hit the cache: %+v", j3)
	}
	if got := s.runs.Load(); got != 2 {
		t.Fatalf("engine runs = %d, want 2", got)
	}
}

// TestConcurrentIdenticalSubmissions is the acceptance scenario: N
// concurrent identical submissions produce exactly one engine run; every
// other submission is a cache hit or coalesces onto the in-flight job.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	const n = 8
	s, c := startServer(t, Config{Workers: 4, QueueDepth: 16, ProgressEvery: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	results := make([]*client.Job, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.SubmitWait(ctx, testSpec(), 5*time.Millisecond)
		}(i)
	}
	wg.Wait()
	var cycles int64 = -1
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("submitter %d: %v", i, errs[i])
		}
		j := results[i]
		if j.State != "done" || j.Result == nil {
			t.Fatalf("submitter %d job: %+v", i, j)
		}
		if cycles < 0 {
			cycles = j.Result.Cycles
		} else if j.Result.Cycles != cycles {
			t.Fatalf("submitter %d got different result: %d vs %d", i, j.Result.Cycles, cycles)
		}
	}
	if got := s.runs.Load(); got != 1 {
		t.Fatalf("engine runs = %d, want exactly 1 for %d identical submissions", got, n)
	}
	hits := s.cache.Stats().Hits
	coal := s.coalesced.Load()
	if hits+coal != n-1 {
		t.Fatalf("cache hits (%d) + coalesced (%d) = %d, want %d", hits, coal, hits+coal, n-1)
	}
}

func TestQueueOverflowReturns429(t *testing.T) {
	g := newGatedRunner()
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 1, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Distinct specs so nothing coalesces.
	sp := func(seed int64) spec.Spec { s := testSpec(); s.Seed = seed; return s }

	a, err := c.Submit(ctx, sp(1))
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	<-g.started // a is running, the queue slot is free again
	if _, err := c.Submit(ctx, sp(2)); err != nil {
		t.Fatalf("submit b: %v", err)
	}
	_, err = c.Submit(ctx, sp(3))
	var re *client.RetryError
	if !errors.As(err, &re) {
		t.Fatalf("want RetryError (429), got %v", err)
	}
	if re.After <= 0 {
		t.Fatalf("Retry-After not propagated: %+v", re)
	}

	// Backpressure clears once the backlog drains.
	g.release <- struct{}{}
	<-g.started
	g.release <- struct{}{}
	if _, err := c.Wait(ctx, a.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("wait a: %v", err)
	}
	g.release <- struct{}{} // pre-release c's gated run
	if _, err := c.SubmitWait(ctx, sp(3), 5*time.Millisecond); err != nil {
		t.Fatalf("resubmit c after backlog drained: %v", err)
	}
}

func TestSSEProgressThenTerminal(t *testing.T) {
	// A larger run so the stream attaches while the job is in flight.
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 4, ProgressEvery: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	sp := testSpec()
	sp.Scale = 2
	j, err := c.Submit(ctx, sp)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var progress, terminal int
	var termName string
	err = c.Events(ctx, j.ID, func(ev client.Event) error {
		switch ev.Name {
		case "progress":
			progress++
		default:
			terminal++
			termName = ev.Name
			if !strings.Contains(string(ev.Data), `"result"`) {
				return fmt.Errorf("terminal event without result: %s", ev.Data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	if progress < 1 {
		t.Fatalf("SSE delivered %d progress events, want >= 1", progress)
	}
	if terminal != 1 || termName != "done" {
		t.Fatalf("terminal events = %d (%q), want exactly one 'done'", terminal, termName)
	}
}

func TestCancelPendingAndRunning(t *testing.T) {
	g := newGatedRunner()
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 4, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sp := func(seed int64) spec.Spec { s := testSpec(); s.Seed = seed; return s }

	running, err := c.Submit(ctx, sp(1))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	pending, err := c.Submit(ctx, sp(2))
	if err != nil {
		t.Fatal(err)
	}

	// Pending: cancelled immediately, never runs.
	got, err := c.Cancel(ctx, pending.ID)
	if err != nil {
		t.Fatalf("cancel pending: %v", err)
	}
	if got.State != "cancelled" {
		t.Fatalf("pending after cancel: %+v", got)
	}

	// Running: interrupt is raised; the job unwinds to cancelled.
	if _, err := c.Cancel(ctx, running.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	g.release <- struct{}{} // let the gated run observe the interrupt
	fin, err := c.Wait(ctx, running.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != "cancelled" {
		t.Fatalf("running job after interrupt: %+v", fin)
	}

	// Cancelling a terminal job is idempotent.
	if again, err := c.Cancel(ctx, pending.ID); err != nil || again.State != "cancelled" {
		t.Fatalf("re-cancel: %+v, %v", again, err)
	}
	if _, err := c.Cancel(ctx, "zzz"); err == nil {
		t.Fatal("cancel of unknown job should 404")
	}
}

// TestDrainFinishesAcceptedJobs is the graceful-shutdown acceptance
// scenario: during drain no new work is admitted, but everything already
// accepted (running AND queued) completes and its results stay
// retrievable.
func TestDrainFinishesAcceptedJobs(t *testing.T) {
	g := newGatedRunner()
	s, c := startServer(t, Config{Workers: 1, QueueDepth: 4, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sp := func(seed int64) spec.Spec { s := testSpec(); s.Seed = seed; return s }

	a, err := c.Submit(ctx, sp(1))
	if err != nil {
		t.Fatal(err)
	}
	<-g.started
	b, err := c.Submit(ctx, sp(2))
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(ctx) }()

	// Admission is closed while draining.
	waitFor(t, func() bool { return c.Healthz(ctx) != nil })
	if _, err := c.Submit(ctx, sp(3)); err == nil {
		t.Fatal("submit during drain should be rejected")
	}

	// Release both gated runs; drain completes without dropping either.
	g.release <- struct{}{}
	<-g.started
	g.release <- struct{}{}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		j, err := c.Get(ctx, id)
		if err != nil {
			t.Fatalf("get %s after drain: %v", id, err)
		}
		if j.State != "done" || j.Result == nil {
			t.Fatalf("job %s dropped by drain: %+v", id, j)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Submit(ctx, spec.Spec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := c.Submit(ctx, spec.Spec{Workload: "fft", Scheme: "bogus"}); err == nil {
		t.Fatal("bad scheme accepted")
	}
	if _, err := c.Get(ctx, "j999"); err == nil {
		t.Fatal("unknown job id should 404")
	}
	if err := c.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
}

// TestEventsAfterCompletion: a subscriber that attaches after the job
// finished still gets the last progress snapshot and the terminal event.
func TestEventsAfterCompletion(t *testing.T) {
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 2, ProgressEvery: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	j, err := c.SubmitWait(ctx, testSpec(), 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var progress, terminal int
	if err := c.Events(ctx, j.ID, func(ev client.Event) error {
		if ev.Name == "progress" {
			progress++
		} else {
			terminal++
		}
		return nil
	}); err != nil {
		t.Fatalf("events: %v", err)
	}
	if progress < 1 || terminal != 1 {
		t.Fatalf("late subscriber saw %d progress, %d terminal", progress, terminal)
	}
}

// TestEventsUnsubscribeOnDisconnect: SSE clients that drop their
// connection mid-run must not leak handler goroutines or job
// subscriptions — the handler exits on the request context and its
// deferred cancel removes the subscriber, so goroutine count returns to
// its pre-stream level while the job is still running.
func TestEventsUnsubscribeOnDisconnect(t *testing.T) {
	g := newGatedRunner()
	_, c := startServer(t, Config{Workers: 1, QueueDepth: 4, ProgressEvery: 1, Runner: g.run})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	j, err := c.Submit(ctx, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-g.started // the run is live (and gated), with one progress published

	before := runtime.NumGoroutine()
	const streams = 8
	ectx, ecancel := context.WithCancel(ctx)
	defer ecancel()
	attached := make(chan struct{}, streams)
	var wg sync.WaitGroup
	for i := 0; i < streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			first := true
			// The replayed progress snapshot arrives on attach, so the
			// first callback marks the stream as established server-side.
			_ = c.Events(ectx, j.ID, func(client.Event) error {
				if first {
					first = false
					attached <- struct{}{}
				}
				return nil
			})
		}()
	}
	for i := 0; i < streams; i++ {
		select {
		case <-attached:
		case <-ctx.Done():
			t.Fatal("SSE streams never attached")
		}
	}
	mid := runtime.NumGoroutine()
	if mid <= before {
		t.Fatalf("goroutines before=%d mid=%d: streams not measurable", before, mid)
	}

	// Drop every client. The handlers must notice via r.Context() and
	// unwind while the job is still running (the leak the test pins:
	// handlers parked in the select until job completion).
	ecancel()
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines before=%d now=%d after disconnect: SSE handlers leaked", before, n)
		}
		time.Sleep(5 * time.Millisecond)
	}

	g.release <- struct{}{}
	if _, err := c.Wait(ctx, j.ID, 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

// TestRunnerUsesEngineInterrupt: the default RealRunner really stops an
// engine run when the job's interrupt is raised (DELETE on a running
// job), completing the service→engine cancellation path.
func TestRunnerUsesEngineInterrupt(t *testing.T) {
	s, c := startServer(t, Config{Workers: 1, QueueDepth: 2, ProgressEvery: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// A big deterministic run: slow enough to catch mid-flight.
	sp := spec.Spec{Workload: "barnes", Scale: 4, Scheme: "cc", Seed: 1}
	j, err := c.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel as soon as it is running. If the run wins the race and
	// finishes first, cancellation is an idempotent no-op — both outcomes
	// are legal; what matters is that an interrupted engine run unwinds to
	// cancelled and the worker survives.
	waitFor(t, func() bool {
		jj, err := c.Get(ctx, j.ID)
		if err != nil {
			return false
		}
		return jj.State == "running" || jj.Terminal()
	})
	if _, err := c.Cancel(ctx, j.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	fin, err := c.Wait(ctx, j.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != "cancelled" && fin.State != "done" {
		t.Fatalf("state after interrupt = %s", fin.State)
	}
	// Whichever way the race went, the worker pool is healthy again.
	if _, err := c.SubmitWait(ctx, testSpec(), 10*time.Millisecond); err != nil {
		t.Fatalf("pool wedged after interrupt: %v", err)
	}
	_ = s
}

func TestPprofMountIsOptIn(t *testing.T) {
	off := httptest.NewServer(New(Config{Runner: newGatedRunner().run}).Handler())
	t.Cleanup(off.Close)
	resp, err := off.Client().Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("pprof served without opt-in: %d", resp.StatusCode)
	}

	on := httptest.NewServer(New(Config{Pprof: true, Runner: newGatedRunner().run}).Handler())
	t.Cleanup(on.Close)
	resp, err = on.Client().Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("pprof index = %d, want 200", resp.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never became true")
}

// TestMetricsEndpoint: GET /metrics serves the Prometheus text format
// with the counters the fleet coordinator scrapes for routing — queue
// depth, running jobs, capacity, and the result-cache hit/miss totals.
func TestMetricsEndpoint(t *testing.T) {
	_, c := startServer(t, Config{Workers: 3, QueueDepth: 8, ProgressEvery: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	scrape := func() map[string]float64 {
		t.Helper()
		blob, err := c.Metrics(ctx)
		if err != nil {
			t.Fatalf("metrics: %v", err)
		}
		m, err := promtext.Parse(strings.NewReader(string(blob)))
		if err != nil {
			t.Fatalf("parse metrics: %v", err)
		}
		return m
	}

	m := scrape()
	if m["slacksimd_up"] != 1 || m["slacksimd_workers"] != 3 || m["slacksimd_queue_capacity"] != 8 {
		t.Fatalf("static gauges wrong: up=%v workers=%v cap=%v",
			m["slacksimd_up"], m["slacksimd_workers"], m["slacksimd_queue_capacity"])
	}

	// One run, then an identical resubmission: completed counter moves
	// once, and the cache hit counter moves on the second submit.
	if _, err := c.SubmitWait(ctx, testSpec(), 5*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, testSpec()); err != nil {
		t.Fatal(err)
	}
	m = scrape()
	if m["slacksimd_jobs_completed_total"] != 1 || m["slacksimd_runs_total"] != 1 {
		t.Fatalf("completed=%v runs=%v, want 1 and 1",
			m["slacksimd_jobs_completed_total"], m["slacksimd_runs_total"])
	}
	if m["slacksimd_result_cache_hits_total"] < 1 {
		t.Fatalf("cache hits = %v, want >= 1", m["slacksimd_result_cache_hits_total"])
	}
	if m["slacksimd_result_cache_misses_total"] < 1 {
		t.Fatalf("cache misses = %v, want >= 1", m["slacksimd_result_cache_misses_total"])
	}
}
