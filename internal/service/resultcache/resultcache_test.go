package resultcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestHitMissCounters(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("get a = %d, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Capacity != 4 {
		t.Fatalf("bad stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch a so b is now the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("bad stats: %+v", s)
	}
}

func TestUpdateRefreshes(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: a becomes MRU
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d, %v; want 10", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestCapacityBound(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
		if c.Len() > 8 {
			t.Fatalf("cache exceeded capacity: %d", c.Len())
		}
	}
	if s := c.Stats(); s.Entries != 8 || s.Evictions != 92 {
		t.Fatalf("bad stats: %+v", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%32)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("over capacity: %d", c.Len())
	}
}
