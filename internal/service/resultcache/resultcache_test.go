package resultcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitMissCounters(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("get a = %d, %v", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Capacity != 4 {
		t.Fatalf("bad stats: %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](3)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	// Touch a so b is now the least recently used.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("d", 4)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted (LRU)")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Fatalf("bad stats: %+v", s)
	}
}

func TestUpdateRefreshes(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: a becomes MRU
	c.Put("c", 3)  // evicts b
	if v, ok := c.Get("a"); !ok || v != 10 {
		t.Fatalf("a = %d, %v; want 10", v, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
}

func TestCapacityBound(t *testing.T) {
	c := New[int](8)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
		if c.Len() > 8 {
			t.Fatalf("cache exceeded capacity: %d", c.Len())
		}
	}
	if s := c.Stats(); s.Entries != 8 || s.Evictions != 92 {
		t.Fatalf("bad stats: %+v", s)
	}
}

// TestConcurrentChurnAtCapacity hammers a full cache from many
// goroutines with a key space 4x the capacity, so every insert races
// with evictions, refreshes, and LRU-touching Gets. The counters must
// stay exactly consistent — every Get is a hit or a miss, every insert
// is either still resident or was evicted — and the capacity bound must
// hold at every concurrent observation, not just at the end.
func TestConcurrentChurnAtCapacity(t *testing.T) {
	const (
		capacity = 8
		keySpace = 4 * capacity
		workers  = 8
		iters    = 2000
	)
	c := New[int](capacity)
	// Fill to capacity first so the whole run churns at the bound.
	for i := 0; i < capacity; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}

	done := make(chan struct{})
	monitorErr := make(chan error, 1)
	go func() {
		defer close(monitorErr)
		for {
			select {
			case <-done:
				return
			default:
			}
			if n := c.Len(); n > capacity {
				monitorErr <- fmt.Errorf("Len() = %d > capacity %d under churn", n, capacity)
				return
			}
			if s := c.Stats(); s.Entries > capacity {
				monitorErr <- fmt.Errorf("Stats().Entries = %d > capacity %d under churn", s.Entries, capacity)
				return
			}
		}
	}()

	var totalGets, totalPuts atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := uint32(w + 1)
			for i := 0; i < iters; i++ {
				// xorshift keeps each worker's key/op sequence cheap,
				// deterministic, and uncorrelated with the others.
				x ^= x << 13
				x ^= x >> 17
				x ^= x << 5
				k := fmt.Sprintf("k%d", x%keySpace)
				if x&1 == 0 {
					c.Put(k, i)
					totalPuts.Add(1)
				} else {
					c.Get(k)
					totalGets.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	if err, ok := <-monitorErr; ok && err != nil {
		t.Fatal(err)
	}

	s := c.Stats()
	if s.Entries != capacity || c.Len() != capacity {
		t.Fatalf("entries = %d, Len = %d; a churned-full cache must sit at capacity %d", s.Entries, c.Len(), capacity)
	}
	// Every Get incremented exactly one of hits/misses.
	if s.Hits+s.Misses != totalGets.Load() {
		t.Fatalf("hits %d + misses %d != gets %d", s.Hits, s.Misses, totalGets.Load())
	}
	// Every insert is resident or evicted; inserts never exceed Puts
	// (refreshes don't insert), and the initial fill adds capacity.
	if inserts := s.Evictions + uint64(s.Entries); inserts > totalPuts.Load()+capacity {
		t.Fatalf("evictions %d + entries %d exceed puts %d", s.Evictions, s.Entries, totalPuts.Load()+capacity)
	}
	if s.Evictions == 0 {
		t.Fatal("churn at 4x capacity never evicted; test is not exercising the bound")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w+i)%32)
				c.Put(k, i)
				c.Get(k)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("over capacity: %d", c.Len())
	}
}
