// Package resultcache is the slacksimd service's content-addressed
// result cache: finished run results keyed by the canonical SHA-256 of
// the normalized run spec (spec.Key), bounded by an LRU policy, with
// hit/miss/eviction counters surfaced through /v1/statsz. Simulations
// are deterministic functions of their normalized spec, so a cached
// result is exactly the result a fresh run would produce — identical
// submissions are served without re-simulating.
package resultcache

import (
	"container/list"
	"sync"
)

// Interface is what the service needs from a result cache. Cache is the
// in-memory implementation; internal/durable.ResultCache implements the
// same contract backed by a persistent store, so slacksimd can swap in
// durability without the HTTP layer noticing.
type Interface[V any] interface {
	Get(key string) (V, bool)
	Put(key string, val V)
	Len() int
	Stats() Stats
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

type entry[V any] struct {
	key string
	val V
}

// Cache is a bounded LRU keyed by content address. All methods are safe
// for concurrent use.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int                      // guarded by mu
	ll       *list.List               // guarded by mu; front = most recently used
	index    map[string]*list.Element // guarded by mu

	hits, misses, evictions uint64 // guarded by mu
}

// New builds a cache holding at most capacity entries (min 1).
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ll:       list.New(),
		index:    make(map[string]*list.Element),
	}
}

// Get returns the value for key, marking it most recently used. The
// hit/miss counters make every lookup observable in /v1/statsz.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry
// when the cache is over capacity.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.index[key]; ok {
		el.Value = entry[V]{key: key, val: val}
		c.ll.MoveToFront(el)
		return
	}
	c.index[key] = c.ll.PushFront(entry[V]{key: key, val: val})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.index, oldest.Value.(entry[V]).key)
		c.evictions++
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
