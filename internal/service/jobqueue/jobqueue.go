// Package jobqueue implements the slacksimd service's bounded FIFO job
// queue: admission control with backpressure (Submit fails fast when the
// queue is full, which the HTTP layer maps to 429 + Retry-After), the
// job lifecycle pending → running → done/failed/cancelled, cancellation
// of pending jobs, per-job progress fan-out for SSE subscribers, and
// graceful drain (stop admitting, run everything already accepted).
//
// The queue is payload-agnostic: it schedules opaque payloads and stores
// opaque results, so it has no dependency on the simulator and can be
// tested in isolation.
package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State int32

// Job states. Pending jobs sit in the FIFO; Running jobs are owned by a
// worker; Done/Failed/Cancelled/Migrated are terminal.
const (
	Pending State = iota
	Running
	Done
	Failed
	Cancelled
	// Migrated means the run stopped at a checkpoint and exported its
	// state: the job is terminal here, and its snapshot continues the run
	// elsewhere (the fleet coordinator resumes it on another worker).
	Migrated
)

// String names the state; these strings are the service's wire format.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	case Cancelled:
		return "cancelled"
	case Migrated:
		return "migrated"
	}
	return fmt.Sprintf("State(%d)", int32(s))
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == Done || s == Failed || s == Cancelled || s == Migrated
}

// Queue errors.
var (
	// ErrFull rejects a Submit when the pending FIFO is at capacity.
	ErrFull = errors.New("jobqueue: queue full")
	// ErrClosed rejects Submits after Close and unblocks Next forever.
	ErrClosed = errors.New("jobqueue: queue closed")
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("jobqueue: no such job")
	// ErrNotCancellable reports a Cancel on a job that is not pending.
	ErrNotCancellable = errors.New("jobqueue: job is not pending")
	// ErrCancelled is the terminal error of a cancelled job; pass it to
	// Finish to mark a running job cancelled instead of failed.
	ErrCancelled = errors.New("jobqueue: job cancelled")
	// ErrMigrated is the terminal error of a migrated job; pass it to
	// Finish to mark a running job migrated instead of failed.
	ErrMigrated = errors.New("jobqueue: job migrated")
	// ErrDuplicate rejects a Restore whose job id is already tracked.
	ErrDuplicate = errors.New("jobqueue: job id already exists")
)

// Job is one unit of work tracked by the queue. Exported fields are
// immutable after Submit; mutable state is behind the accessors.
type Job struct {
	// ID is the queue-assigned identifier ("j1", "j2", ...).
	ID string
	// Key is the caller's dedup/content address (the spec hash).
	Key string
	// Payload is the work description (a spec.Spec in the service).
	Payload any
	// Created is the admission time.
	Created time.Time

	mu     sync.Mutex
	state  State // guarded by mu
	result any   // guarded by mu
	err    error // guarded by mu
	// done is created once in newJob and closed exactly once in finish;
	// receiving from it is lock-free by design.
	done     chan struct{}
	subs     map[int]chan any // guarded by mu
	nextSub  int              // guarded by mu
	lastProg any              // guarded by mu
}

func newJob(id, key string, payload any) *Job {
	return &Job{
		ID:      id,
		Key:     key,
		Payload: payload,
		Created: time.Now(),
		done:    make(chan struct{}),
		subs:    make(map[int]chan any),
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the terminal result and error; meaningful only after
// Done() is closed.
func (j *Job) Result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.err
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Publish fans a progress event out to every subscriber without ever
// blocking the producer: a subscriber whose buffer is full misses the
// event (progress is a monotone snapshot stream, so the next delivery
// supersedes it). The latest event is retained for late subscribers.
//
//slacksim:hotpath
func (j *Job) Publish(ev any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.lastProg = ev
	for _, ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// LastEvent returns the most recently published event (nil if none).
func (j *Job) LastEvent() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastProg
}

// Subscribe registers a progress listener with the given buffer and
// returns the channel plus a cancel func. The channel is closed when the
// job terminates, after any final buffered events.
func (j *Job) Subscribe(buf int) (<-chan any, func()) {
	if buf < 1 {
		buf = 1
	}
	ch := make(chan any, buf)
	j.mu.Lock()
	id := j.nextSub
	j.nextSub++
	if j.state.Terminal() {
		close(ch)
	} else {
		j.subs[id] = ch
	}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
			close(ch)
		}
		j.mu.Unlock()
	}
}

// finish moves the job to a terminal state and releases waiters.
func (j *Job) finish(state State, result any, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.result = result
	j.err = err
	for id, ch := range j.subs {
		delete(j.subs, id)
		close(ch)
	}
	close(j.done)
	j.mu.Unlock()
}

// Err returns the job's terminal error message ("" while non-terminal or
// on success).
func (j *Job) Err() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err == nil {
		return ""
	}
	return j.err.Error()
}

// Stats is a snapshot of the queue's counters.
type Stats struct {
	Depth     int    `json:"depth"`
	Capacity  int    `json:"capacity"`
	Running   int    `json:"running"`
	Submitted uint64 `json:"submitted"`
	Rejected  uint64 `json:"rejected"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	Migrated  uint64 `json:"migrated"`
	Restored  uint64 `json:"restored"`
}

// DefaultRetention is how many terminal jobs stay retrievable by Get
// before the oldest are forgotten (bounding the job index under
// sustained traffic).
const DefaultRetention = 4096

// Queue is the bounded FIFO. All methods are safe for concurrent use.
type Queue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	capacity  int             // guarded by mu
	retention int             // guarded by mu
	pending   []*Job          // guarded by mu
	jobs      map[string]*Job // guarded by mu
	terminal  []string        // guarded by mu; terminal job ids, oldest first
	running   int             // guarded by mu
	closed    bool            // guarded by mu
	seq       uint64          // guarded by mu

	submitted, rejected, nDone, nFailed, nCancelled uint64 // guarded by mu
	nMigrated, nRestored                            uint64 // guarded by mu
}

// New builds a queue admitting at most capacity pending jobs (min 1).
func New(capacity int) *Queue {
	if capacity < 1 {
		capacity = 1
	}
	q := &Queue{capacity: capacity, retention: DefaultRetention, jobs: make(map[string]*Job)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// SetRetention bounds how many terminal jobs Get can still find (min 1).
func (q *Queue) SetRetention(n int) {
	if n < 1 {
		n = 1
	}
	q.mu.Lock()
	q.retention = n
	q.sweepLocked()
	q.mu.Unlock()
}

// noteTerminalLocked records a terminal job and forgets the oldest terminal
// jobs beyond the retention bound. Callers hold q.mu.
func (q *Queue) noteTerminalLocked(id string) {
	q.terminal = append(q.terminal, id)
	q.sweepLocked()
}

func (q *Queue) sweepLocked() {
	for len(q.terminal) > q.retention {
		delete(q.jobs, q.terminal[0])
		q.terminal = q.terminal[1:]
	}
}

// Submit admits a new pending job, failing with ErrFull when the FIFO is
// at capacity (the caller should apply backpressure) or ErrClosed after
// Close.
func (q *Queue) Submit(key string, payload any) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if len(q.pending) >= q.capacity {
		q.rejected++
		return nil, ErrFull
	}
	q.seq++
	j := newJob(fmt.Sprintf("j%d", q.seq), key, payload)
	q.jobs[j.ID] = j
	q.pending = append(q.pending, j)
	q.submitted++
	q.cond.Broadcast()
	return j, nil
}

// Restore re-admits a job recovered from a crash journal under its
// original id, bypassing the capacity bound: recovery must never drop
// work that was already accepted. The sequence counter advances past the
// restored id so fresh submissions cannot collide with it.
func (q *Queue) Restore(id, key string, payload any) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if _, ok := q.jobs[id]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicate, id)
	}
	var n uint64
	if _, err := fmt.Sscanf(id, "j%d", &n); err == nil && n > q.seq {
		q.seq = n
	}
	j := newJob(id, key, payload)
	q.jobs[id] = j
	q.pending = append(q.pending, j)
	q.nRestored++
	q.cond.Broadcast()
	return j, nil
}

// AddDone registers an already-completed job (a cache hit served without
// occupying a queue slot) so it is visible to Get like any other job.
func (q *Queue) AddDone(key string, payload, result any) *Job {
	q.mu.Lock()
	q.seq++
	j := newJob(fmt.Sprintf("j%d", q.seq), key, payload)
	q.jobs[j.ID] = j
	q.noteTerminalLocked(j.ID)
	q.mu.Unlock()
	j.finish(Done, result, nil)
	return j
}

// Get looks a job up by id.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	return j, ok
}

// Next blocks until a pending job is available, marks it running, and
// returns it. It returns ErrClosed once the queue is closed AND the FIFO
// has drained, so workers naturally finish the backlog before exiting.
func (q *Queue) Next() (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if len(q.pending) > 0 {
			j := q.pending[0]
			q.pending = q.pending[1:]
			j.mu.Lock()
			j.state = Running
			j.mu.Unlock()
			q.running++
			return j, nil
		}
		if q.closed {
			return nil, ErrClosed
		}
		q.cond.Wait()
	}
}

// Cancel cancels a pending job, removing it from the FIFO. Running or
// terminal jobs return ErrNotCancellable (the service cancels running
// jobs through the engine's interrupt flag instead); unknown ids return
// ErrNotFound.
func (q *Queue) Cancel(id string) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return ErrNotFound
	}
	idx := -1
	for i, p := range q.pending {
		if p == j {
			idx = i
			break
		}
	}
	if idx < 0 {
		q.mu.Unlock()
		return ErrNotCancellable
	}
	q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
	q.nCancelled++
	q.noteTerminalLocked(j.ID)
	q.cond.Broadcast()
	q.mu.Unlock()
	j.finish(Cancelled, nil, ErrCancelled)
	return nil
}

// Eject removes a pending job from the FIFO and marks it Migrated with
// no exported state: the job never started, so its spec alone restarts
// it anywhere. Running or terminal jobs return ErrNotCancellable;
// unknown ids return ErrNotFound.
func (q *Queue) Eject(id string) error {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return ErrNotFound
	}
	idx := -1
	for i, p := range q.pending {
		if p == j {
			idx = i
			break
		}
	}
	if idx < 0 {
		q.mu.Unlock()
		return ErrNotCancellable
	}
	q.pending = append(q.pending[:idx], q.pending[idx+1:]...)
	q.nMigrated++
	q.noteTerminalLocked(j.ID)
	q.cond.Broadcast()
	q.mu.Unlock()
	j.finish(Migrated, nil, ErrMigrated)
	return nil
}

// Finish retires a running job: err == nil → Done, err wrapping
// ErrCancelled → Cancelled, err wrapping ErrMigrated → Migrated,
// anything else → Failed.
func (q *Queue) Finish(j *Job, result any, err error) {
	state := Done
	switch {
	case errors.Is(err, ErrCancelled):
		state = Cancelled
	case errors.Is(err, ErrMigrated):
		state = Migrated
	case err != nil:
		state = Failed
	}
	j.finish(state, result, err)
	q.mu.Lock()
	q.running--
	switch state {
	case Done:
		q.nDone++
	case Failed:
		q.nFailed++
	case Cancelled:
		q.nCancelled++
	case Migrated:
		q.nMigrated++
	}
	q.noteTerminalLocked(j.ID)
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Close stops admission. Pending jobs still run; Next unblocks with
// ErrClosed once the FIFO drains.
func (q *Queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Drain blocks until every admitted job has finished (pending FIFO empty
// and no job running) or ctx expires. It does not itself stop admission;
// call Close first for a terminal drain.
func (q *Queue) Drain(ctx context.Context) error {
	// The wakeup must be issued under q.mu: an unlocked Broadcast can
	// fire in the window between the loop's predicate test below and
	// cond.Wait, and that waiter would then sleep past the cancellation
	// (the same lost-wakeup class as the PR 1 parallel-host shutdown bug).
	stop := context.AfterFunc(ctx, func() {
		q.mu.Lock()
		q.cond.Broadcast()
		q.mu.Unlock()
	})
	defer stop()
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.pending) > 0 || q.running > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		q.cond.Wait()
	}
	return nil
}

// Stats snapshots the counters.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return Stats{
		Depth:     len(q.pending),
		Capacity:  q.capacity,
		Running:   q.running,
		Submitted: q.submitted,
		Rejected:  q.rejected,
		Done:      q.nDone,
		Failed:    q.nFailed,
		Cancelled: q.nCancelled,
		Migrated:  q.nMigrated,
		Restored:  q.nRestored,
	}
}
