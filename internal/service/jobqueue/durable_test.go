package jobqueue

import (
	"errors"
	"testing"
)

func TestRestoreReenqueuesAndAdvancesSeq(t *testing.T) {
	q := New(8)

	j, err := q.Restore("j41", "key-a", "payload-a")
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if j.ID != "j41" || j.Key != "key-a" || j.State() != Pending {
		t.Fatalf("restored job = %+v state=%v", j, j.State())
	}

	// Duplicate IDs are rejected: a journal replay must not double-book.
	if _, err := q.Restore("j41", "key-a", nil); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate restore: want ErrDuplicate, got %v", err)
	}

	// Fresh submissions must not collide with restored IDs: the sequence
	// advances past the highest restored number.
	j2, err := q.Submit("key-b", nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if j2.ID == "j41" {
		t.Fatalf("fresh job reused restored ID %s", j2.ID)
	}

	// FIFO order: restored job first, then the fresh one.
	n1, err := q.Next()
	if err != nil || n1.ID != "j41" {
		t.Fatalf("next = %v, %v; want j41", n1, err)
	}
	n2, err := q.Next()
	if err != nil || n2.ID != j2.ID {
		t.Fatalf("next = %v, %v; want %s", n2, err, j2.ID)
	}

	s := q.Stats()
	if s.Restored != 1 {
		t.Fatalf("stats.Restored = %d, want 1", s.Restored)
	}
}

func TestRestoreBypassesCapacity(t *testing.T) {
	q := New(1)
	if _, err := q.Submit("a", nil); err != nil {
		t.Fatal(err)
	}
	// Recovery re-admits everything the journal promised, even past the
	// configured depth — the jobs were already accepted once.
	if _, err := q.Restore("j100", "b", nil); err != nil {
		t.Fatalf("restore past capacity: %v", err)
	}
	if got := q.Stats().Depth; got != 2 {
		t.Fatalf("depth = %d, want 2", got)
	}
}

func TestEjectPendingJob(t *testing.T) {
	q := New(8)
	j, err := q.Submit("k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Eject(j.ID); err != nil {
		t.Fatalf("eject: %v", err)
	}
	if j.State() != Migrated {
		t.Fatalf("ejected state = %v, want Migrated", j.State())
	}
	if !j.State().Terminal() {
		t.Fatal("Migrated must be terminal")
	}
	if _, err := j.Result(); !errors.Is(err, ErrMigrated) {
		t.Fatalf("result err = %v, want ErrMigrated", err)
	}
	// The ejected job left the FIFO: nothing remains to dispatch.
	if got := q.Stats().Depth; got != 0 {
		t.Fatalf("depth after eject = %d, want 0", got)
	}
	if got := q.Stats().Migrated; got != 1 {
		t.Fatalf("stats.Migrated = %d, want 1", got)
	}
}

func TestEjectRunningJobNotCancellable(t *testing.T) {
	q := New(8)
	j, _ := q.Submit("k", nil)
	if _, err := q.Next(); err != nil {
		t.Fatal(err)
	}
	if err := q.Eject(j.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("eject running: want ErrNotCancellable, got %v", err)
	}
	// The running job instead finishes with ErrMigrated once its worker
	// exports the snapshot.
	q.Finish(j, nil, ErrMigrated)
	if j.State() != Migrated {
		t.Fatalf("state = %v, want Migrated", j.State())
	}
	if got := q.Stats().Migrated; got != 1 {
		t.Fatalf("stats.Migrated = %d, want 1", got)
	}
}
