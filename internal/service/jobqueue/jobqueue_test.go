package jobqueue

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFIFOOrderAndStates(t *testing.T) {
	q := New(8)
	var ids []string
	for i := 0; i < 3; i++ {
		j, err := q.Submit(fmt.Sprintf("k%d", i), i)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if j.State() != Pending {
			t.Fatalf("fresh job state = %v", j.State())
		}
		ids = append(ids, j.ID)
	}
	for i := 0; i < 3; i++ {
		j, err := q.Next()
		if err != nil {
			t.Fatalf("next: %v", err)
		}
		if j.ID != ids[i] {
			t.Fatalf("pop %d = %s, want %s (FIFO)", i, j.ID, ids[i])
		}
		if j.State() != Running {
			t.Fatalf("popped job state = %v", j.State())
		}
		q.Finish(j, i*10, nil)
		if j.State() != Done {
			t.Fatalf("finished job state = %v", j.State())
		}
		res, err := j.Result()
		if err != nil || res.(int) != i*10 {
			t.Fatalf("result = %v, %v", res, err)
		}
	}
	s := q.Stats()
	if s.Submitted != 3 || s.Done != 3 || s.Depth != 0 || s.Running != 0 {
		t.Fatalf("bad stats: %+v", s)
	}
}

func TestBackpressure(t *testing.T) {
	q := New(2)
	if _, err := q.Submit("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("b", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("c", nil); !errors.Is(err, ErrFull) {
		t.Fatalf("want ErrFull, got %v", err)
	}
	if got := q.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// Popping one frees a slot.
	j, err := q.Next()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Submit("c", nil); err != nil {
		t.Fatalf("submit after pop: %v", err)
	}
	q.Finish(j, nil, nil)
}

func TestCancelPending(t *testing.T) {
	q := New(4)
	a, _ := q.Submit("a", nil)
	b, _ := q.Submit("b", nil)
	if err := q.Cancel(b.ID); err != nil {
		t.Fatalf("cancel pending: %v", err)
	}
	if b.State() != Cancelled {
		t.Fatalf("state = %v", b.State())
	}
	select {
	case <-b.Done():
	default:
		t.Fatal("done channel not closed on cancel")
	}
	// The cancelled job never reaches a worker.
	j, err := q.Next()
	if err != nil || j.ID != a.ID {
		t.Fatalf("next = %v, %v; want %s", j, err, a.ID)
	}
	if err := q.Cancel(a.ID); !errors.Is(err, ErrNotCancellable) {
		t.Fatalf("cancel running: want ErrNotCancellable, got %v", err)
	}
	if err := q.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: want ErrNotFound, got %v", err)
	}
	// A running job interrupted by the engine finishes Cancelled.
	q.Finish(j, nil, fmt.Errorf("run: %w", ErrCancelled))
	if j.State() != Cancelled {
		t.Fatalf("interrupted job state = %v", j.State())
	}
	if got := q.Stats().Cancelled; got != 2 {
		t.Fatalf("cancelled = %d, want 2", got)
	}
}

func TestFailurePath(t *testing.T) {
	q := New(1)
	j, _ := q.Submit("a", nil)
	jj, _ := q.Next()
	q.Finish(jj, nil, errors.New("boom"))
	if j.State() != Failed || j.Err() != "boom" {
		t.Fatalf("state=%v err=%q", j.State(), j.Err())
	}
	if got := q.Stats().Failed; got != 1 {
		t.Fatalf("failed = %d", got)
	}
}

func TestPublishSubscribe(t *testing.T) {
	q := New(1)
	j, _ := q.Submit("a", nil)
	ch, cancel := j.Subscribe(4)
	defer cancel()
	j.Publish(1)
	j.Publish(2)
	if got := <-ch; got.(int) != 1 {
		t.Fatalf("first event = %v", got)
	}
	if got := j.LastEvent(); got.(int) != 2 {
		t.Fatalf("last event = %v", got)
	}
	// A full subscriber never blocks the publisher.
	for i := 0; i < 100; i++ {
		j.Publish(i)
	}
	jj, _ := q.Next()
	q.Finish(jj, nil, nil)
	// Channel closes on terminal state (drain buffered then closed).
	deadline := time.After(2 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("subscriber channel never closed")
		}
	}
}

func TestSubscribeTerminal(t *testing.T) {
	q := New(1)
	j, _ := q.Submit("a", nil)
	jj, _ := q.Next()
	q.Finish(jj, nil, nil)
	ch, cancel := j.Subscribe(1)
	defer cancel()
	if _, ok := <-ch; ok {
		t.Fatal("subscription to a terminal job should be closed immediately")
	}
}

func TestCloseDrainsWorkers(t *testing.T) {
	q := New(8)
	for i := 0; i < 5; i++ {
		if _, err := q.Submit("k", i); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if _, err := q.Submit("late", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v", err)
	}
	// Workers drain the backlog, then see ErrClosed.
	var done int
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, err := q.Next()
				if err != nil {
					return
				}
				q.Finish(j, nil, nil)
				mu.Lock()
				done++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if done != 5 {
		t.Fatalf("drained %d jobs, want 5", done)
	}
	ctx, stop := context.WithTimeout(context.Background(), time.Second)
	defer stop()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestDrainTimeout(t *testing.T) {
	q := New(1)
	j, _ := q.Submit("a", nil)
	if _, err := q.Next(); err != nil {
		t.Fatal(err)
	}
	ctx, stop := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer stop()
	if err := q.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain with a stuck running job: want deadline, got %v", err)
	}
	q.Finish(j, nil, nil)
}

func TestTerminalRetention(t *testing.T) {
	q := New(4)
	q.SetRetention(2)
	var ids []string
	for i := 0; i < 4; i++ {
		j, err := q.Submit("k", i)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
		jj, _ := q.Next()
		q.Finish(jj, nil, nil)
	}
	// Only the two most recent terminal jobs remain retrievable.
	for _, id := range ids[:2] {
		if _, ok := q.Get(id); ok {
			t.Fatalf("job %s should have been swept", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := q.Get(id); !ok {
			t.Fatalf("job %s should have been retained", id)
		}
	}
}

func TestConcurrentSubmitPop(t *testing.T) {
	q := New(64)
	const producers, each = 8, 50
	var wg sync.WaitGroup
	var accepted, popped int64
	var mu sync.Mutex
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j, err := q.Next()
				if err != nil {
					return
				}
				q.Finish(j, nil, nil)
				mu.Lock()
				popped++
				mu.Unlock()
			}
		}()
	}
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; i < each; i++ {
				if _, err := q.Submit("k", i); err == nil {
					mu.Lock()
					accepted++
					mu.Unlock()
				}
			}
		}()
	}
	pwg.Wait()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := q.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	q.Close()
	wg.Wait()
	close(stop)
	if popped != accepted {
		t.Fatalf("popped %d != accepted %d", popped, accepted)
	}
}
