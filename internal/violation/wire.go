package violation

import (
	"bytes"
	"encoding/gob"
	"sort"
)

// Wire serialization for run snapshots: counts, the selected set, and
// the per-interval first-violation maps flattened into index-sorted
// slices so the encoding is deterministic.

type intervalWire struct {
	Interval int64
	Indexes  []int64
	FirstTS  []int64
}

type detectorWire struct {
	Counts       [numTypes]uint64
	WindowCounts [numTypes]uint64
	Selected     [numTypes]bool
	Intervals    []intervalWire
}

// GobEncode implements gob.GobEncoder.
func (d *Detector) GobEncode() ([]byte, error) {
	w := detectorWire{Counts: d.counts, WindowCounts: d.windowCounts, Selected: d.selected}
	for _, is := range d.intervals {
		iw := intervalWire{Interval: is.Interval, Indexes: make([]int64, 0, len(is.firstTS))}
		for idx := range is.firstTS {
			iw.Indexes = append(iw.Indexes, idx)
		}
		sort.Slice(iw.Indexes, func(i, j int) bool { return iw.Indexes[i] < iw.Indexes[j] })
		iw.FirstTS = make([]int64, len(iw.Indexes))
		for i, idx := range iw.Indexes {
			iw.FirstTS[i] = is.firstTS[idx]
		}
		w.Intervals = append(w.Intervals, iw)
	}
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(w)
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (d *Detector) GobDecode(data []byte) error {
	var w detectorWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	d.counts, d.windowCounts, d.selected = w.Counts, w.WindowCounts, w.Selected
	d.intervals = nil
	for _, iw := range w.Intervals {
		is := &IntervalStats{Interval: iw.Interval, firstTS: make(map[int64]int64, len(iw.Indexes))}
		for i, idx := range iw.Indexes {
			if i < len(iw.FirstTS) {
				is.firstTS[idx] = iw.FirstTS[i]
			}
		}
		d.intervals = append(d.intervals, is)
	}
	return nil
}
