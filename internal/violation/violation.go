// Package violation implements detection and accounting of simulation
// violations, the paper's central accuracy-control instrument.
//
// A simulation violation occurs when a resource is accessed in a different
// order in the simulation than it would be in the target system: the
// detection mechanism attaches a monitoring variable to the resource that
// records the largest timestamp of any operation applied so far, and flags
// any operation whose timestamp is smaller (Section 3 of the paper).
//
// The Detector aggregates per-type counts, the cumulative violation rate
// used by adaptive slack, and the per-checkpoint-interval statistics
// (fraction of intervals with at least one violation, distance of the
// first violation inside a violating interval) that feed the speculative
// slack analytical model (Tables 3 and 4).
package violation

import "fmt"

// Type classifies a violation by the resource it hit.
type Type uint8

// Violation types tracked by the simulator. Bus violations are simulation
// state violations on the request-bus grant order; Map violations are
// simulated-system-state violations on the global cache status map.
// Workload violations cannot occur in this simulator (synchronization is
// executed reliably), but the type exists so tests can assert the count
// stays zero.
const (
	Bus Type = iota
	Map
	Workload
	numTypes
)

// String names the violation type.
func (t Type) String() string {
	switch t {
	case Bus:
		return "bus"
	case Map:
		return "map"
	case Workload:
		return "workload"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Types lists all tracked violation types.
func Types() []Type { return []Type{Bus, Map, Workload} }

// Monitor is a monitoring variable attached to one simulation resource.
// Observe applies an operation timestamp and reports whether it was
// retrograde.
type Monitor struct {
	// MaxTS is the largest timestamp seen (-1 when untouched).
	MaxTS int64
}

// NewMonitor returns an untouched monitor.
func NewMonitor() Monitor { return Monitor{MaxTS: -1} }

// Observe applies ts and reports a violation when ts is smaller than the
// largest timestamp already observed.
func (m *Monitor) Observe(ts int64) bool {
	if ts < m.MaxTS {
		return true
	}
	m.MaxTS = ts
	return false
}

// IntervalStats accumulates Table 3/4 statistics for one checkpoint
// interval length.
type IntervalStats struct {
	// Interval is the checkpoint interval length in simulated cycles.
	Interval int64
	// firstTS maps interval index -> timestamp of first violation in it.
	firstTS map[int64]int64
}

// Detector counts violations and derives rates and interval statistics.
type Detector struct {
	counts [numTypes]uint64
	// windowCounts supports windowed-rate controllers (ablation study);
	// the paper's controller uses the cumulative rate.
	windowCounts [numTypes]uint64

	intervals []*IntervalStats

	// Selected marks the violation types that "count" for control and
	// rollback decisions; the paper notes users may ignore some types
	// (e.g. track only map violations). All types are always counted;
	// Selected only gates SelectedCount and the Selected* helpers.
	selected [numTypes]bool
}

// NewDetector returns a detector tracking all types, with every type
// selected.
func NewDetector() *Detector {
	d := &Detector{}
	for i := range d.selected {
		d.selected[i] = true
	}
	return d
}

// Select restricts the "selected" set used for control decisions.
func (d *Detector) Select(types ...Type) {
	for i := range d.selected {
		d.selected[i] = false
	}
	for _, t := range types {
		d.selected[t] = true
	}
}

// Selected reports whether t is in the selected set.
func (d *Detector) Selected(t Type) bool { return d.selected[t] }

// TrackIntervals enables Table 3/4 accounting for the given checkpoint
// interval lengths (in simulated cycles).
func (d *Detector) TrackIntervals(lengths ...int64) {
	for _, l := range lengths {
		if l <= 0 {
			panic("violation: interval length must be positive")
		}
		// Revive a parked IntervalStats (Reset truncates the slice but
		// keeps the entries within capacity) instead of allocating a
		// fresh map on every run of a pooled machine.
		n := len(d.intervals)
		if n < cap(d.intervals) && d.intervals[:n+1][n] != nil {
			is := d.intervals[:n+1][n]
			is.Interval = l
			clear(is.firstTS)
			d.intervals = d.intervals[:n+1]
			continue
		}
		d.intervals = append(d.intervals, &IntervalStats{
			Interval: l, firstTS: make(map[int64]int64),
		})
	}
}

// Record counts one violation of type t that occurred at simulated time ts.
func (d *Detector) Record(t Type, ts int64) {
	d.counts[t]++
	d.windowCounts[t]++
	if !d.selected[t] {
		return
	}
	for _, is := range d.intervals {
		idx := ts / is.Interval
		if cur, ok := is.firstTS[idx]; !ok || ts < cur {
			is.firstTS[idx] = ts
		}
	}
}

// Count returns the cumulative count for type t.
func (d *Detector) Count(t Type) uint64 { return d.counts[t] }

// Total returns the cumulative count across all types.
func (d *Detector) Total() uint64 {
	var n uint64
	for _, c := range d.counts {
		n += c
	}
	return n
}

// SelectedCount returns the cumulative count across selected types.
func (d *Detector) SelectedCount() uint64 {
	var n uint64
	for t, c := range d.counts {
		if d.selected[t] {
			n += c
		}
	}
	return n
}

// Rate returns the cumulative violation rate over cycles simulated cycles:
// total violations of selected types divided by cycles.
func (d *Detector) Rate(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(d.SelectedCount()) / float64(cycles)
}

// RateOf returns the cumulative rate for a single type.
func (d *Detector) RateOf(t Type, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(d.counts[t]) / float64(cycles)
}

// WindowCountAndReset returns the selected-type violations recorded since
// the previous call and resets the window.
func (d *Detector) WindowCountAndReset() uint64 {
	var n uint64
	for t := range d.windowCounts {
		if d.selected[t] {
			n += d.windowCounts[t]
		}
		d.windowCounts[t] = 0
	}
	return n
}

// IntervalReport is the Table 3/4 summary for one interval length. The
// json tags are part of the stable Results serialization contract (see
// engine.Results).
type IntervalReport struct {
	Interval int64 `json:"interval"`
	// TotalIntervals is the number of whole intervals covered by the run.
	TotalIntervals int64 `json:"total_intervals"`
	// ViolatingIntervals is how many contained at least one selected
	// violation.
	ViolatingIntervals int64 `json:"violating_intervals"`
	// FractionViolating is ViolatingIntervals / TotalIntervals (Table 3's F).
	FractionViolating float64 `json:"fraction_violating"`
	// MeanFirstDistance is the mean distance, in cycles, from the start of
	// a violating interval to its first violation (Table 4's Dr).
	MeanFirstDistance float64 `json:"mean_first_distance"`
}

// Intervals produces the report for every tracked interval length, given
// the final simulated time.
func (d *Detector) Intervals(endTime int64) []IntervalReport {
	var out []IntervalReport
	for _, is := range d.intervals {
		total := endTime / is.Interval
		if total == 0 && endTime > 0 {
			total = 1
		}
		// Accumulate in an integer: the summands are exact and map
		// iteration order then cannot perturb the total, whereas float
		// addition is order-sensitive in its low bits.
		var violating int64
		var distSum int64
		for _, first := range is.firstTS {
			violating++
			distSum += first % is.Interval
		}
		rep := IntervalReport{Interval: is.Interval, TotalIntervals: total}
		if violating > total {
			violating = total
		}
		rep.ViolatingIntervals = violating
		if total > 0 {
			rep.FractionViolating = float64(violating) / float64(total)
		}
		if violating > 0 {
			rep.MeanFirstDistance = float64(distSum) / float64(len(is.firstTS))
		}
		out = append(out, rep)
	}
	return out
}

// Snapshot deep-copies the detector.
func (d *Detector) Snapshot() *Detector {
	n := &Detector{}
	d.CopyInto(n)
	return n
}

// CopyInto deep-copies the detector's state into dst, reusing dst's
// IntervalStats entries and their maps when the tracked interval lengths
// match — the per-boundary variant of Snapshot used by incremental
// checkpoints, allocation-free in the steady state.
//
//slacksim:hotpath
func (d *Detector) CopyInto(dst *Detector) {
	dst.counts = d.counts
	dst.windowCounts = d.windowCounts
	dst.selected = d.selected
	match := len(dst.intervals) == len(d.intervals)
	if match {
		for i, is := range d.intervals {
			if dst.intervals[i].Interval != is.Interval {
				match = false
				break
			}
		}
	}
	if !match {
		dst.intervals = dst.intervals[:0]
		for _, is := range d.intervals {
			dst.intervals = append(dst.intervals, // interval-shape change only (first copy or reconfiguration); steady-state boundaries hit the match path
				&IntervalStats{Interval: is.Interval, firstTS: make(map[int64]int64, len(is.firstTS))}) //lint:allow hotpathalloc -- same shape-change path as above
		}
	}
	for i, is := range d.intervals {
		di := dst.intervals[i]
		clear(di.firstTS)
		for k, v := range is.firstTS {
			di.firstTS[k] = v
		}
	}
}

// Restore overwrites the detector from a snapshot.
func (d *Detector) Restore(snap *Detector) {
	snap.CopyInto(d)
}

// Reset returns the detector to its freshly-constructed state: counts
// zeroed, every type selected, interval tracking dropped (the entries are
// parked within the slice capacity so a later TrackIntervals reuses
// them). Used when a pooled machine is recycled for a new run.
func (d *Detector) Reset() {
	d.counts = [numTypes]uint64{}
	d.windowCounts = [numTypes]uint64{}
	for i := range d.selected {
		d.selected[i] = true
	}
	for _, is := range d.intervals {
		clear(is.firstTS)
	}
	d.intervals = d.intervals[:0]
}
