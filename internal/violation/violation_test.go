package violation

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMonitor(t *testing.T) {
	m := NewMonitor()
	if m.Observe(5) {
		t.Error("first observation violated")
	}
	if m.Observe(5) {
		t.Error("equal timestamp violated")
	}
	if !m.Observe(4) {
		t.Error("retrograde not flagged")
	}
	if m.MaxTS != 5 {
		t.Errorf("MaxTS = %d, want 5", m.MaxTS)
	}
	if m.Observe(9) || m.MaxTS != 9 {
		t.Error("forward observation mishandled")
	}
}

func TestTypeString(t *testing.T) {
	if Bus.String() != "bus" || Map.String() != "map" || Workload.String() != "workload" {
		t.Error("type names wrong")
	}
	if len(Types()) != 3 {
		t.Error("Types() incomplete")
	}
}

func TestCountsAndRates(t *testing.T) {
	d := NewDetector()
	d.Record(Bus, 10)
	d.Record(Bus, 20)
	d.Record(Map, 30)
	if d.Count(Bus) != 2 || d.Count(Map) != 1 || d.Count(Workload) != 0 {
		t.Error("counts wrong")
	}
	if d.Total() != 3 || d.SelectedCount() != 3 {
		t.Error("totals wrong")
	}
	if got := d.Rate(300); got != 0.01 {
		t.Errorf("Rate = %v, want 0.01", got)
	}
	if got := d.RateOf(Bus, 200); got != 0.01 {
		t.Errorf("RateOf(Bus) = %v", got)
	}
	if d.Rate(0) != 0 {
		t.Error("rate at zero cycles must be 0")
	}
}

func TestSelection(t *testing.T) {
	d := NewDetector()
	d.Select(Map)
	d.Record(Bus, 1)
	d.Record(Map, 2)
	if d.SelectedCount() != 1 {
		t.Errorf("SelectedCount = %d, want 1 (map only)", d.SelectedCount())
	}
	if d.Count(Bus) != 1 {
		t.Error("unselected types must still be counted")
	}
	if d.Selected(Bus) || !d.Selected(Map) {
		t.Error("Selected() wrong")
	}
}

func TestWindowCountAndReset(t *testing.T) {
	d := NewDetector()
	d.Record(Bus, 1)
	d.Record(Bus, 2)
	if got := d.WindowCountAndReset(); got != 2 {
		t.Errorf("window = %d, want 2", got)
	}
	if got := d.WindowCountAndReset(); got != 0 {
		t.Errorf("window after reset = %d, want 0", got)
	}
	if d.Count(Bus) != 2 {
		t.Error("reset clobbered cumulative count")
	}
}

func TestIntervals(t *testing.T) {
	d := NewDetector()
	d.TrackIntervals(100)
	// Violations in intervals 0 (at 30, first) and 2 (at 250).
	d.Record(Bus, 40)
	d.Record(Bus, 30)
	d.Record(Map, 250)
	reps := d.Intervals(400) // 4 whole intervals
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	r := reps[0]
	if r.TotalIntervals != 4 || r.ViolatingIntervals != 2 {
		t.Errorf("intervals %d/%d, want 2/4", r.ViolatingIntervals, r.TotalIntervals)
	}
	if r.FractionViolating != 0.5 {
		t.Errorf("F = %v, want 0.5", r.FractionViolating)
	}
	// First distances: 30 in interval 0, 50 in interval 2 → mean 40.
	if math.Abs(r.MeanFirstDistance-40) > 1e-9 {
		t.Errorf("Dr = %v, want 40", r.MeanFirstDistance)
	}
}

func TestIntervalsRespectSelection(t *testing.T) {
	d := NewDetector()
	d.Select(Map)
	d.TrackIntervals(100)
	d.Record(Bus, 10) // unselected: must not mark the interval
	reps := d.Intervals(200)
	if reps[0].ViolatingIntervals != 0 {
		t.Error("unselected violation marked an interval")
	}
}

func TestIntervalsInvalidLengthPanics(t *testing.T) {
	d := NewDetector()
	defer func() {
		if recover() == nil {
			t.Error("non-positive interval accepted")
		}
	}()
	d.TrackIntervals(0)
}

func TestSnapshotRestore(t *testing.T) {
	d := NewDetector()
	d.TrackIntervals(50)
	d.Record(Bus, 10)
	snap := d.Snapshot()
	d.Record(Bus, 60)
	d.Record(Map, 70)
	d.Restore(snap)
	if d.Count(Bus) != 1 || d.Count(Map) != 0 {
		t.Error("restore lost counts")
	}
	reps := d.Intervals(100)
	if reps[0].ViolatingIntervals != 1 {
		t.Errorf("restored intervals wrong: %+v", reps[0])
	}
	// Deep copy check.
	d.Record(Map, 80)
	if snap.Count(Map) != 0 {
		t.Error("snapshot aliases live counts")
	}
}

// Property: the rate equals selected count divided by cycles for any
// recording sequence.
func TestQuickRate(t *testing.T) {
	prop := func(ts []int16, cycles uint16) bool {
		d := NewDetector()
		for _, x := range ts {
			v := int64(x)
			if v < 0 {
				v = -v
			}
			d.Record(Bus, v)
		}
		c := int64(cycles) + 1
		return d.Rate(c) == float64(len(ts))/float64(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: F is always in [0,1] and Dr is always within the interval.
func TestQuickIntervalBounds(t *testing.T) {
	prop := func(ts []uint16) bool {
		d := NewDetector()
		d.TrackIntervals(64)
		var max int64
		for _, x := range ts {
			v := int64(x)
			d.Record(Map, v)
			if v > max {
				max = v
			}
		}
		for _, r := range d.Intervals(max + 64) {
			if r.FractionViolating < 0 || r.FractionViolating > 1 {
				return false
			}
			if r.MeanFirstDistance < 0 || r.MeanFirstDistance >= float64(r.Interval) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
