// Package sampling implements Pac-Sim-style interval sampling for the
// deterministic host: the run is cut into fixed-size instruction
// intervals, a periodic subset is simulated in full detail (cycle-accurate
// CC pacing), and the rest fast-forward through a warmed functional mode
// (unbounded slack, so the cores stay warm but the host skips almost all
// manager synchronization). The estimator extrapolates the cycles of the
// fast-forwarded intervals from the CPI measured in the detailed ones and
// reports a confidence interval around the estimate.
package sampling

import (
	"fmt"
	"math"
)

// Plan configures interval sampling. The zero value means "disabled";
// call Normalize to fill defaults before use.
type Plan struct {
	// IntervalInsts is the interval length in total retired instructions
	// (summed across cores).
	IntervalInsts uint64 `json:"interval_insts"`
	// DetailEvery simulates every DetailEvery-th interval in detail
	// (interval 0 is always detailed, so the extrapolation never runs on
	// an empty sample).
	DetailEvery int `json:"detail_every"`
	// Confidence is the two-sided confidence level of the reported bound:
	// one of 0.90, 0.95, or 0.99.
	Confidence float64 `json:"confidence"`
}

// Normalize fills defaults in place and returns the plan.
func (p *Plan) Normalize() *Plan {
	if p.IntervalInsts == 0 {
		p.IntervalInsts = 20000
	}
	if p.DetailEvery == 0 {
		p.DetailEvery = 5
	}
	if p.Confidence == 0 {
		p.Confidence = 0.95
	}
	return p
}

// Validate reports whether the plan is runnable.
func (p *Plan) Validate() error {
	if p.IntervalInsts == 0 {
		return fmt.Errorf("sampling: interval length must be positive")
	}
	if p.DetailEvery < 1 {
		return fmt.Errorf("sampling: detail-every must be >= 1, got %d", p.DetailEvery)
	}
	switch p.Confidence {
	case 0.90, 0.95, 0.99:
	default:
		return fmt.Errorf("sampling: confidence must be 0.90, 0.95, or 0.99, got %g", p.Confidence)
	}
	return nil
}

// Canonical returns the plan's canonical spec-key segment. It must stay
// stable: it feeds content-addressed spec digests.
func (p Plan) Canonical() string {
	return fmt.Sprintf("interval=%d|every=%d|conf=%g", p.IntervalInsts, p.DetailEvery, p.Confidence)
}

// Detailed reports whether interval idx is simulated in detail.
func (p Plan) Detailed(idx int) bool { return idx%p.DetailEvery == 0 }

// biasFrac is the extrapolation-bias allowance folded into the half
// width: fast-forwarding perturbs spin-loop instruction counts (a core
// running ahead under unbounded slack spins a little more or less at
// locks and barriers than it would under CC), which the CPI-variance term
// alone cannot see. The allowance is a fixed fraction of the
// extrapolated cycles; DESIGN.md §16 derives the choice.
const biasFrac = 0.05

// Report is the sampling estimate attached to Results. All fields are
// part of the stable JSON contract.
type Report struct {
	Intervals         int   `json:"intervals"`
	DetailedIntervals int   `json:"detailed_intervals"`
	DetailedCycles    int64 `json:"detailed_cycles"`
	DetailedInsts     int64 `json:"detailed_insts"`
	FastForwardCycles int64 `json:"fast_forward_cycles"`
	FastForwardInsts  int64 `json:"fast_forward_insts"`
	// MeanCPI is the ratio estimate over detailed intervals:
	// DetailedCycles / DetailedInsts.
	MeanCPI float64 `json:"mean_cpi"`
	// EstimatedCycles = DetailedCycles + MeanCPI*FastForwardInsts.
	EstimatedCycles float64 `json:"estimated_cycles"`
	// HalfWidth is the half width of the two-sided confidence interval
	// around EstimatedCycles at the stated Confidence level.
	HalfWidth  float64 `json:"half_width"`
	Confidence float64 `json:"confidence"`
}

// Within reports whether cycles falls inside the estimate's confidence
// interval.
func (r Report) Within(cycles int64) bool {
	return math.Abs(float64(cycles)-r.EstimatedCycles) <= r.HalfWidth
}

// Estimator accumulates per-interval measurements during a run and
// produces the final Report. It is single-goroutine (the deterministic
// host's engine loop owns it).
type Estimator struct {
	plan Plan

	cpis     []float64 // per-detailed-interval aggregate CPI samples
	detIvals int
	ffIvals  int

	detCycles int64
	detInsts  int64
	ffCycles  int64
	ffInsts   int64
}

// NewEstimator returns an estimator for a normalized plan.
func NewEstimator(plan Plan) *Estimator {
	return &Estimator{plan: plan}
}

// AddDetailed records one detailed interval: cycles of simulated time it
// spanned and total instructions retired inside it.
func (e *Estimator) AddDetailed(cycles, insts int64) {
	e.detIvals++
	e.detCycles += cycles
	e.detInsts += insts
	if insts > 0 {
		e.cpis = append(e.cpis, float64(cycles)/float64(insts))
	}
}

// AddFastForward records one fast-forwarded interval. The cycles are the
// functional mode's own (untrusted) timing; the estimator replaces them
// with the extrapolation but reports both.
func (e *Estimator) AddFastForward(cycles, insts int64) {
	e.ffIvals++
	e.ffCycles += cycles
	e.ffInsts += insts
}

// Report finalizes the estimate.
func (e *Estimator) Report() Report {
	r := Report{
		Intervals:         e.detIvals + e.ffIvals,
		DetailedIntervals: e.detIvals,
		DetailedCycles:    e.detCycles,
		DetailedInsts:     e.detInsts,
		FastForwardCycles: e.ffCycles,
		FastForwardInsts:  e.ffInsts,
		Confidence:        e.plan.Confidence,
	}
	if e.detInsts > 0 {
		r.MeanCPI = float64(e.detCycles) / float64(e.detInsts)
	}
	extrapolated := r.MeanCPI * float64(e.ffInsts)
	r.EstimatedCycles = float64(e.detCycles) + extrapolated

	// Error model: a Student-t interval on the mean per-interval CPI,
	// scaled by the extrapolated instruction count, plus the fixed
	// extrapolation-bias allowance. With fewer than two CPI samples the
	// variance is unobservable, so the whole extrapolated part is the
	// bound (maximally conservative).
	if e.ffInsts == 0 {
		r.HalfWidth = 0
		return r
	}
	n := len(e.cpis)
	if n < 2 {
		r.HalfWidth = extrapolated
		return r
	}
	mean := 0.0
	for _, c := range e.cpis {
		mean += c
	}
	mean /= float64(n)
	var ss float64
	for _, c := range e.cpis {
		d := c - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	se := sd / math.Sqrt(float64(n))
	r.HalfWidth = tQuantile(e.plan.Confidence, n-1)*se*float64(e.ffInsts) + biasFrac*extrapolated
	return r
}

// tQuantile returns the two-sided Student-t critical value for the given
// confidence level and degrees of freedom. Levels are restricted to the
// three the Plan validates; df beyond the table falls back to the normal
// quantile.
func tQuantile(confidence float64, df int) float64 {
	var tab []float64
	var z float64
	switch confidence {
	case 0.90:
		tab = t90
		z = 1.645
	case 0.95:
		tab = t95
		z = 1.960
	case 0.99:
		tab = t99
		z = 2.576
	default:
		// Validate rejects other levels; be conservative if reached.
		tab = t99
		z = 2.576
	}
	if df < 1 {
		df = 1
	}
	if df <= len(tab) {
		return tab[df-1]
	}
	return z
}

// Two-sided critical values of the t distribution, df = 1..30.
var (
	t90 = []float64{
		6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
		1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
		1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
	}
	t95 = []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
		2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
		2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
	}
	t99 = []float64{
		63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
		3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
		2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
	}
)
