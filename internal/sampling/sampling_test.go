package sampling

import (
	"math"
	"testing"
)

func TestPlanNormalizeDefaults(t *testing.T) {
	var p Plan
	p.Normalize()
	if p.IntervalInsts == 0 || p.DetailEvery == 0 || p.Confidence == 0 {
		t.Fatalf("Normalize left zero fields: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("normalized default plan invalid: %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		ok   bool
	}{
		{"default", *(&Plan{}).Normalize(), true},
		{"zero interval", Plan{IntervalInsts: 0, DetailEvery: 2, Confidence: 0.95}, false},
		{"bad every", Plan{IntervalInsts: 100, DetailEvery: -1, Confidence: 0.95}, false},
		{"bad conf", Plan{IntervalInsts: 100, DetailEvery: 2, Confidence: 0.5}, false},
		{"conf 0.90", Plan{IntervalInsts: 100, DetailEvery: 2, Confidence: 0.90}, true},
		{"conf 0.99", Plan{IntervalInsts: 100, DetailEvery: 1, Confidence: 0.99}, true},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%t", tc.name, err, tc.ok)
		}
	}
}

func TestPlanDetailed(t *testing.T) {
	p := Plan{IntervalInsts: 100, DetailEvery: 3, Confidence: 0.95}
	want := map[int]bool{0: true, 1: false, 2: false, 3: true, 4: false, 6: true}
	for idx, d := range want {
		if p.Detailed(idx) != d {
			t.Errorf("Detailed(%d) = %t, want %t", idx, p.Detailed(idx), d)
		}
	}
	every1 := Plan{DetailEvery: 1}
	for idx := 0; idx < 5; idx++ {
		if !every1.Detailed(idx) {
			t.Errorf("DetailEvery=1 must make every interval detailed, idx %d was not", idx)
		}
	}
}

func TestEstimatorNoFastForward(t *testing.T) {
	e := NewEstimator(*(&Plan{}).Normalize())
	e.AddDetailed(1000, 500)
	e.AddDetailed(1100, 500)
	r := e.Report()
	if r.FastForwardInsts != 0 || r.HalfWidth != 0 {
		t.Fatalf("all-detailed run must have zero half width, got %+v", r)
	}
	if r.EstimatedCycles != 2100 {
		t.Fatalf("EstimatedCycles = %g, want 2100", r.EstimatedCycles)
	}
	if !r.Within(2100) {
		t.Fatalf("exact estimate must be within its own bound")
	}
}

func TestEstimatorExactCPI(t *testing.T) {
	// Constant CPI of 2: the estimate must reconstruct the true total and
	// the half width collapses to the bias allowance alone.
	e := NewEstimator(Plan{IntervalInsts: 100, DetailEvery: 2, Confidence: 0.95})
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			e.AddDetailed(200, 100)
		} else {
			e.AddFastForward(150, 100) // untrusted fast-mode cycles
		}
	}
	r := e.Report()
	if r.DetailedIntervals != 3 || r.Intervals != 6 {
		t.Fatalf("interval counts wrong: %+v", r)
	}
	if r.MeanCPI != 2.0 {
		t.Fatalf("MeanCPI = %g, want 2", r.MeanCPI)
	}
	wantEst := 600.0 + 2.0*300.0
	if r.EstimatedCycles != wantEst {
		t.Fatalf("EstimatedCycles = %g, want %g", r.EstimatedCycles, wantEst)
	}
	wantHW := biasFrac * 600.0 // zero variance → only the bias term
	if math.Abs(r.HalfWidth-wantHW) > 1e-9 {
		t.Fatalf("HalfWidth = %g, want %g", r.HalfWidth, wantHW)
	}
	if !r.Within(int64(wantEst)) || r.Within(int64(wantEst+2*wantHW)) {
		t.Fatalf("Within() inconsistent with half width %g around %g", r.HalfWidth, r.EstimatedCycles)
	}
}

func TestEstimatorSingleSampleConservative(t *testing.T) {
	e := NewEstimator(Plan{IntervalInsts: 100, DetailEvery: 2, Confidence: 0.95})
	e.AddDetailed(300, 100)
	e.AddFastForward(100, 100)
	r := e.Report()
	// One CPI sample: the bound must cover the whole extrapolated part.
	if r.HalfWidth != 300 {
		t.Fatalf("single-sample HalfWidth = %g, want 300 (the extrapolated cycles)", r.HalfWidth)
	}
}

func TestEstimatorVarianceWidensBound(t *testing.T) {
	narrow := NewEstimator(Plan{IntervalInsts: 100, DetailEvery: 2, Confidence: 0.95})
	wide := NewEstimator(Plan{IntervalInsts: 100, DetailEvery: 2, Confidence: 0.95})
	for i := 0; i < 4; i++ {
		narrow.AddDetailed(200, 100)
		if i%2 == 0 {
			wide.AddDetailed(100, 100)
		} else {
			wide.AddDetailed(300, 100)
		}
		narrow.AddFastForward(0, 100)
		wide.AddFastForward(0, 100)
	}
	rn, rw := narrow.Report(), wide.Report()
	if rw.HalfWidth <= rn.HalfWidth {
		t.Fatalf("higher CPI variance must widen the bound: narrow=%g wide=%g", rn.HalfWidth, rw.HalfWidth)
	}
}

func TestTQuantile(t *testing.T) {
	if got := tQuantile(0.95, 1); got != 12.706 {
		t.Errorf("t(0.95, df=1) = %g, want 12.706", got)
	}
	if got := tQuantile(0.95, 1000); got != 1.960 {
		t.Errorf("t(0.95, large df) = %g, want normal 1.960", got)
	}
	// Monotone in confidence, decreasing in df.
	if !(tQuantile(0.90, 10) < tQuantile(0.95, 10) && tQuantile(0.95, 10) < tQuantile(0.99, 10)) {
		t.Error("t quantiles not monotone in confidence")
	}
	if !(tQuantile(0.95, 5) > tQuantile(0.95, 25)) {
		t.Error("t quantiles must shrink with df")
	}
	if got := tQuantile(0.42, 3); got != t99[2] {
		t.Errorf("unknown confidence must fall back to the conservative table, got %g", got)
	}
}

func TestCanonicalStable(t *testing.T) {
	p := Plan{IntervalInsts: 5000, DetailEvery: 4, Confidence: 0.99}
	const want = "interval=5000|every=4|conf=0.99"
	if got := p.Canonical(); got != want {
		t.Fatalf("Canonical() = %q, want %q (spec digests depend on this)", got, want)
	}
}
