package promtext

import (
	"math"
	"strings"
	"testing"
)

func TestWriteThenParseRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Gauge("queue_depth", "pending jobs", 3)
	w.Counter("jobs_done_total", "completed jobs", 17)
	w.Gauge("rate", "a fraction", 0.25)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP queue_depth pending jobs",
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"# TYPE jobs_done_total counter",
		"jobs_done_total 17",
		"rate 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got["queue_depth"] != 3 || got["jobs_done_total"] != 17 || got["rate"] != 0.25 {
		t.Fatalf("parse round trip = %v", got)
	}
}

func TestParseSkipsLabelsAndComments(t *testing.T) {
	in := `# HELP x y
# TYPE x gauge
x 1
x{core="0"} 9

up 1
`
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["x"] != 1 || got["up"] != 1 || len(got) != 2 {
		t.Fatalf("parse = %v", got)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	if _, err := Parse(strings.NewReader("lonely_name\n")); err == nil {
		t.Fatal("expected error for a sample without a value")
	}
	if _, err := Parse(strings.NewReader("x not-a-number\n")); err == nil {
		t.Fatal("expected error for a non-numeric value")
	}
}

func TestParseRejectsDuplicateMetricNames(t *testing.T) {
	_, err := Parse(strings.NewReader("x 1\nx 2\n"))
	if err == nil || !strings.Contains(err.Error(), "duplicate metric name") {
		t.Fatalf("expected a duplicate-name error, got %v", err)
	}
	// Labeled duplicates of an unlabeled sample are someone else's series
	// and stay skippable.
	got, err := Parse(strings.NewReader("x 1\nx{core=\"0\"} 2\nx{core=\"1\"} 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["x"] != 1 || len(got) != 1 {
		t.Fatalf("parse = %v", got)
	}
}

func TestParseExponentFloats(t *testing.T) {
	got, err := Parse(strings.NewReader("big 1.5e+09\nsmall 2.5e-07\nneg -3e2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if got["big"] != 1.5e9 || got["small"] != 2.5e-7 || got["neg"] != -300 {
		t.Fatalf("parse = %v", got)
	}
}

// TestNaNAndInfRoundTrip pins the non-finite gauge contract: the Writer
// emits Go's FormatFloat spellings (NaN, +Inf, -Inf), which both
// strconv.ParseFloat and the Prometheus text format accept back.
func TestNaNAndInfRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Gauge("not_a_number", "h", math.NaN())
	w.Gauge("pos_inf", "h", math.Inf(1))
	w.Gauge("neg_inf", "h", math.Inf(-1))
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"not_a_number NaN", "pos_inf +Inf", "neg_inf -Inf"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got["not_a_number"]) {
		t.Errorf("NaN did not round-trip: %v", got["not_a_number"])
	}
	if !math.IsInf(got["pos_inf"], 1) || !math.IsInf(got["neg_inf"], -1) {
		t.Errorf("Inf did not round-trip: %v %v", got["pos_inf"], got["neg_inf"])
	}
}

// TestLargeIntegerValues covers the formatValue int fast path at the
// edges where float64 can no longer represent every integer exactly.
func TestLargeIntegerValues(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Counter("big_total", "h", 1<<53)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got["big_total"] != 1<<53 {
		t.Fatalf("parse = %v", got)
	}
}
