package promtext

import (
	"strings"
	"testing"
)

func TestWriteThenParseRoundTrip(t *testing.T) {
	var b strings.Builder
	w := NewWriter(&b)
	w.Gauge("queue_depth", "pending jobs", 3)
	w.Counter("jobs_done_total", "completed jobs", 17)
	w.Gauge("rate", "a fraction", 0.25)
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP queue_depth pending jobs",
		"# TYPE queue_depth gauge",
		"queue_depth 3",
		"# TYPE jobs_done_total counter",
		"jobs_done_total 17",
		"rate 0.25",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got["queue_depth"] != 3 || got["jobs_done_total"] != 17 || got["rate"] != 0.25 {
		t.Fatalf("parse round trip = %v", got)
	}
}

func TestParseSkipsLabelsAndComments(t *testing.T) {
	in := `# HELP x y
# TYPE x gauge
x 1
x{core="0"} 9

up 1
`
	got, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["x"] != 1 || got["up"] != 1 || len(got) != 2 {
		t.Fatalf("parse = %v", got)
	}
}

func TestParseRejectsMalformedLines(t *testing.T) {
	if _, err := Parse(strings.NewReader("lonely_name\n")); err == nil {
		t.Fatal("expected error for a sample without a value")
	}
	if _, err := Parse(strings.NewReader("x not-a-number\n")); err == nil {
		t.Fatal("expected error for a non-numeric value")
	}
}
