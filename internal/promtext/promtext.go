// Package promtext reads and writes the Prometheus text exposition
// format (version 0.0.4), the least common denominator every metrics
// stack scrapes. slacksimd serves its counters through the Writer on
// GET /metrics; the fleet coordinator scrapes worker endpoints with
// Parse to drive load-aware routing and re-exports fleet-level
// aggregates through the same Writer. Only the subset the service
// needs is implemented: unlabeled gauges and counters.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Writer emits one metric family per Gauge/Counter call.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Gauge writes a gauge family with a single unlabeled sample.
func (p *Writer) Gauge(name, help string, value float64) {
	p.family(name, help, "gauge", value)
}

// Counter writes a counter family with a single unlabeled sample. By
// convention the name should end in "_total".
func (p *Writer) Counter(name, help string, value float64) {
	p.family(name, help, "counter", value)
}

func (p *Writer) family(name, help, kind string, value float64) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, kind, name, formatValue(value))
}

// Err returns the first write error, if any.
func (p *Writer) Err() error { return p.err }

// formatValue renders a sample value the way Prometheus expects:
// integers without an exponent, everything else in Go's shortest form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Parse reads a text exposition and returns the unlabeled samples by
// metric name. Comment lines, blank lines, and labeled samples are
// skipped (the service never emits labels); malformed lines are an
// error so a half-scraped endpoint is noticed instead of read as zeros.
func Parse(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("promtext: malformed sample line %q", line)
		}
		name := fields[0]
		if strings.ContainsAny(name, "{}") {
			continue // labeled sample: not ours
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("promtext: bad value in %q: %w", line, err)
		}
		// A duplicate unlabeled sample means the endpoint emitted the same
		// family twice; last-wins would silently drop one of the values,
		// so reject the exposition instead.
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("promtext: duplicate metric name %q", name)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
