package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/promtext"
	"slacksim/internal/service/server"
	"slacksim/internal/spec"
)

// newWorker builds a real slacksimd (engine runs and all) reachable
// through the in-process transport.
func newWorker(t *testing.T) (*server.Server, *HTTPTransport) {
	t.Helper()
	s := server.New(server.Config{Workers: 2, QueueDepth: 32})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Drain(ctx)
	})
	return s, InprocTransport(s.Handler())
}

// newFleet builds a coordinator daemon over the given worker transports
// and returns a client speaking to it in-process.
func newFleet(t *testing.T, cfg FacadeConfig, workers map[string]Transport) (*Facade, *client.Client) {
	t.Helper()
	f := NewFacade(cfg)
	for id, tr := range workers {
		f.Registry().Add(id, "http://"+id, tr)
	}
	f.Registry().ProbeOnce(context.Background())
	hc := &http.Client{Transport: handlerRoundTripper{h: f.Handler()}}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = f.Drain(ctx)
	})
	return f, client.NewWithHTTPClient("http://fleet", hc)
}

// runLocally executes sp in-process through the public API — the
// reference the fleet must match byte for byte.
func runLocally(t *testing.T, sp spec.Spec) *slacksim.Results {
	t.Helper()
	cfg, err := sp.Config()
	if err != nil {
		t.Fatalf("config %v: %v", sp, err)
	}
	sim, err := slacksim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	return &res
}

// canonJSON renders results with the wall clock (the only host-time
// field) zeroed, for byte comparison.
func canonJSON(t *testing.T, r *slacksim.Results) []byte {
	t.Helper()
	c := *r
	c.WallClock = 0
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func sweepGrid() []spec.Spec {
	var grid []spec.Spec
	for _, wl := range []string{"fft", "lu"} {
		for _, sch := range []string{"s8", "su", "adaptive"} {
			grid = append(grid, spec.Spec{Workload: wl, Scheme: sch, Cores: 2, Seed: 1})
		}
	}
	return grid
}

// TestFleetMatchesSingleNodeByteIdentical is the acceptance gate: a
// sweep submitted through the coordinator with two in-process workers
// returns results byte-identical (wall clock aside) to local runs.
func TestFleetMatchesSingleNodeByteIdentical(t *testing.T) {
	_, t1 := newWorker(t)
	_, t2 := newWorker(t)
	_, c := newFleet(t, FacadeConfig{
		Server:      server.Config{Workers: 4, QueueDepth: 32},
		Coordinator: CoordinatorConfig{BackoffBase: time.Millisecond},
	}, map[string]Transport{"w1": t1, "w2": t2})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	for _, sp := range sweepGrid() {
		j, err := c.SubmitWait(ctx, sp, 2*time.Millisecond)
		if err != nil {
			t.Fatalf("%s/%s: %v", sp.Workload, sp.Scheme, err)
		}
		if j.State != "done" || j.Result == nil {
			t.Fatalf("%s/%s: job %s: %s", sp.Workload, sp.Scheme, j.State, j.Error)
		}
		want := canonJSON(t, runLocally(t, sp))
		got := canonJSON(t, j.Result)
		if !bytes.Equal(got, want) {
			t.Errorf("%s/%s: fleet result differs from local:\nfleet: %s\nlocal: %s",
				sp.Workload, sp.Scheme, got, want)
		}
	}
}

// TestKillWorkerMidSweepCompletesAllCells: one of two workers dies
// while a sweep is in flight; health probing drains its dispatches,
// the coordinator fails everything over, and every cell still finishes
// with the correct result — none lost, none wrong.
func TestKillWorkerMidSweepCompletesAllCells(t *testing.T) {
	_, t1 := newWorker(t)
	_, t2 := newWorker(t)
	dying := NewFailableTransport(t1)
	_, c := newFleet(t, FacadeConfig{
		Server: server.Config{Workers: 4, QueueDepth: 64},
		Coordinator: CoordinatorConfig{
			MaxAttempts: 5, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		},
		Registry: RegistryConfig{
			ProbeInterval: 10 * time.Millisecond, ProbeTimeout: 100 * time.Millisecond, FailThreshold: 1,
		},
	}, map[string]Transport{"w1": dying, "w2": t2})

	grid := make([]spec.Spec, 0, 12)
	for seed := int64(1); seed <= 6; seed++ {
		grid = append(grid,
			spec.Spec{Workload: "fft", Scheme: "s4", Cores: 2, Seed: seed},
			spec.Spec{Workload: "lu", Scheme: "su", Cores: 2, Seed: seed})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	jobs := make([]*client.Job, len(grid))
	errs := make([]error, len(grid))
	var wg sync.WaitGroup
	for i, sp := range grid {
		wg.Add(1)
		go func(i int, sp spec.Spec) {
			defer wg.Done()
			jobs[i], errs[i] = c.SubmitWait(ctx, sp, 2*time.Millisecond)
		}(i, sp)
	}
	// Let the sweep get going, then kill worker 1 mid-flight.
	time.Sleep(5 * time.Millisecond)
	dying.Down()
	wg.Wait()

	for i, sp := range grid {
		if errs[i] != nil {
			t.Fatalf("cell %s/%s/%d lost: %v", sp.Workload, sp.Scheme, sp.Seed, errs[i])
		}
		j := jobs[i]
		if j.State != "done" || j.Result == nil {
			t.Fatalf("cell %s/%s/%d: job %s: %s", sp.Workload, sp.Scheme, sp.Seed, j.State, j.Error)
		}
		want := canonJSON(t, runLocally(t, sp))
		if got := canonJSON(t, j.Result); !bytes.Equal(got, want) {
			t.Errorf("cell %s/%s/%d: wrong result after failover", sp.Workload, sp.Scheme, sp.Seed)
		}
	}
}

// TestFacadeAttemptDetailAndCoalescing: the fleet daemon keeps the
// single-node semantics (cache, coalescing) and surfaces the dispatch
// history in the job view's detail field.
func TestFacadeAttemptDetailAndCoalescing(t *testing.T) {
	_, t1 := newWorker(t)
	f, c := newFleet(t, FacadeConfig{
		Server: server.Config{Workers: 2, QueueDepth: 16},
	}, map[string]Transport{"w1": t1})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sp := spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: 42}
	j, err := c.SubmitWait(ctx, sp, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.State != "done" {
		t.Fatalf("job: %s: %s", j.State, j.Error)
	}
	fin, err := c.Get(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var detail struct {
		Attempts []Attempt `json:"attempts"`
	}
	if err := json.Unmarshal(fin.Detail, &detail); err != nil {
		t.Fatalf("detail %s: %v", fin.Detail, err)
	}
	if len(detail.Attempts) != 1 || detail.Attempts[0].Worker != "w1" || detail.Attempts[0].Error != "" {
		t.Fatalf("attempt history = %+v", detail.Attempts)
	}

	// Identical resubmission: served from the fleet-level cache, no
	// second dispatch.
	j2, err := c.Submit(ctx, sp)
	if err != nil {
		t.Fatal(err)
	}
	if !j2.Cached {
		t.Fatalf("resubmission not cached: %+v", j2)
	}
	if at := f.Coordinator().Attempts(j2.ID); at != nil {
		t.Fatalf("cache hit dispatched to a worker: %+v", at)
	}
}

// TestFleetMembershipEndpointsAndMetrics drives the /v1/fleet/* API and
// the aggregate /metrics export end to end.
func TestFleetMembershipEndpointsAndMetrics(t *testing.T) {
	ws, t1 := newWorker(t)
	f, c := newFleet(t, FacadeConfig{
		Server: server.Config{Workers: 2, QueueDepth: 16},
	}, map[string]Transport{"w1": t1})
	hc := &http.Client{Transport: handlerRoundTripper{h: f.Handler()}}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Run one job so worker counters move.
	if _, err := c.SubmitWait(ctx, spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: 5}, 2*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	f.Registry().ProbeOnce(ctx) // refresh the load samples post-run

	// Membership listing.
	resp, err := hc.Get("http://fleet/v1/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing.Workers) != 1 || listing.Workers[0].ID != "w1" || !listing.Workers[0].Healthy {
		t.Fatalf("workers = %+v", listing.Workers)
	}
	if listing.Workers[0].Capacity != 2 {
		t.Fatalf("scraped capacity = %d, want the worker pool size 2", listing.Workers[0].Capacity)
	}

	// Join a second worker over HTTP, then leave it.
	_, t2 := newWorker(t)
	f.Registry().Add("pre", "http://pre", t2) // direct add for comparison
	body := strings.NewReader(`{"id":"w3","url":"http://nowhere:1"}`)
	resp, err = hc.Post("http://fleet/v1/fleet/workers", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %s", resp.Status)
	}
	if got := len(f.Registry().Snapshot()); got != 3 {
		t.Fatalf("workers after join = %d, want 3", got)
	}
	req, _ := http.NewRequest(http.MethodDelete, "http://fleet/v1/fleet/workers/w3", nil)
	resp, err = hc.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: %s", resp.Status)
	}
	if got := len(f.Registry().Snapshot()); got != 2 {
		t.Fatalf("workers after leave = %d, want 2", got)
	}

	// Fleet /metrics: the coordinator's own counters plus aggregates.
	resp, err = hc.Get("http://fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m, err := promtext.Parse(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if m["slacksimfleet_workers"] != 2 {
		t.Fatalf("slacksimfleet_workers = %v, want 2", m["slacksimfleet_workers"])
	}
	if m["slacksimd_jobs_completed_total"] < 1 {
		t.Fatalf("coordinator completed counter = %v, want >= 1", m["slacksimd_jobs_completed_total"])
	}
	if m["slacksimfleet_capacity"] < 2 {
		t.Fatalf("aggregate capacity = %v, want >= 2", m["slacksimfleet_capacity"])
	}
	_ = ws

	// Cancellation propagates: a job interrupted on the fleet daemon
	// reports cancelled, same as single-node.
	gated := &fakeTransport{}
	blocked := make(chan struct{})
	gated.runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
		close(blocked)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	f.Registry().Add("w1", "http://w1", gated)
	f.Registry().Remove("pre")
	j, err := c.Submit(ctx, spec.Spec{Workload: "water", Scheme: "su", Cores: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	if _, err := c.Cancel(ctx, j.ID); err != nil {
		t.Fatal(err)
	}
	fin, err := c.Wait(ctx, j.ID, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != "cancelled" {
		t.Fatalf("state after cancel = %s (%s)", fin.State, fin.Error)
	}
}

// TestSweepThroughFleetMatchesSingleNodeTSV mirrors the CI smoke: the
// same grid through a single slacksimd and through the coordinator must
// produce identical result rows.
func TestSweepThroughFleetMatchesSingleNodeTSV(t *testing.T) {
	single := server.New(server.Config{Workers: 2, QueueDepth: 32})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = single.Drain(ctx)
	})
	singleClient := client.NewWithHTTPClient("http://single",
		&http.Client{Transport: handlerRoundTripper{h: single.Handler()}})

	_, t1 := newWorker(t)
	_, t2 := newWorker(t)
	_, fleetClient := newFleet(t, FacadeConfig{
		Server: server.Config{Workers: 4, QueueDepth: 32},
	}, map[string]Transport{"w1": t1, "w2": t2})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	row := func(c *client.Client, sp spec.Spec) string {
		j, err := c.SubmitWait(ctx, sp, 2*time.Millisecond)
		if err != nil {
			t.Fatalf("%v: %v", sp, err)
		}
		if j.State != "done" {
			t.Fatalf("%v: %s: %s", sp, j.State, j.Error)
		}
		r := j.Result
		return fmt.Sprintf("%s\t%s\t%d\t%d\t%d\t%.3f\t%d\t%d\t%.6f\t%.6f\t%.0f",
			sp.Workload, r.Scheme, sp.Seed, r.Cycles, r.Committed, r.CPI,
			r.BusViolations, r.MapViolations, r.BusRate, r.MapRate, r.HostWorkUnits)
	}
	for _, sp := range sweepGrid() {
		if got, want := row(fleetClient, sp), row(singleClient, sp); got != want {
			t.Errorf("row mismatch:\nfleet:  %s\nsingle: %s", got, want)
		}
	}
}
