package fleet

import (
	"context"
	"reflect"
	"testing"
	"time"

	"slacksim/internal/experiments"
)

// quickExperiments is a grid small enough for a unit test but touching
// every spec feature the suite needs: bounded/unbounded/adaptive
// schemes, measured violations, interval tracking, checkpointing with
// rollback, map-only selection, and the AIAD policy ablation.
func quickExperiments() experiments.Config {
	cfg := experiments.Default()
	cfg.Cores = 4
	cfg.Workloads = []string{"water"}
	cfg.Fig3Bounds = []int64{4, 32}
	cfg.Fig4Targets = []float64{0.005}
	cfg.CheckpointIntervals = []int64{500, 2000}
	cfg.StatIntervals = []int64{250, 1000}
	return cfg
}

// TestDriverGoldenMatchesLocal is the Driver acceptance: the experiment
// suite run through a two-worker fleet produces results identical to
// the in-process engine (the compared outputs carry no wall-clock
// fields, so equality is exact).
func TestDriverGoldenMatchesLocal(t *testing.T) {
	_, t1 := newWorker(t)
	_, t2 := newWorker(t)
	reg := NewRegistry(RegistryConfig{})
	reg.Add("w1", "http://w1", t1)
	reg.Add("w2", "http://w2", t2)
	coord := NewCoordinator(reg, CoordinatorConfig{})
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Second)
	defer cancel()

	local := quickExperiments()
	remote := quickExperiments()
	remote.Exec = NewDriver(ctx, coord).Exec

	localFig3, err := experiments.Fig3(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteFig3, err := experiments.Fig3(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteFig3, localFig3) {
		t.Errorf("Fig3 differs:\nfleet: %+v\nlocal: %+v", remoteFig3, localFig3)
	}

	localT34, err := experiments.Table3And4(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteT34, err := experiments.Table3And4(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteT34, localT34) {
		t.Errorf("Table3/4 differs:\nfleet: %+v\nlocal: %+v", remoteT34, localT34)
	}

	localT5, err := experiments.Table5(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteT5, err := experiments.Table5(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteT5, localT5) {
		t.Errorf("Table5 differs:\nfleet: %+v\nlocal: %+v", remoteT5, localT5)
	}

	localAbl, err := experiments.Ablations(local)
	if err != nil {
		t.Fatal(err)
	}
	remoteAbl, err := experiments.Ablations(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(remoteAbl, localAbl) {
		t.Errorf("Ablations differ:\nfleet: %+v\nlocal: %+v", remoteAbl, localAbl)
	}
}
