package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"slacksim"
	"slacksim/internal/promtext"
	"slacksim/internal/service/server"
)

// FacadeConfig parameterizes a fleet coordinator daemon.
type FacadeConfig struct {
	// Server configures the job-facing layer (queue depth, cache size,
	// worker-pool size = max concurrent dispatches). Runner and Detail
	// are owned by the façade and must be left nil.
	Server server.Config
	// Coordinator configures routing and retries.
	Coordinator CoordinatorConfig
	// Registry configures health probing.
	Registry RegistryConfig
	// InterruptPoll is how often a dispatch checks its job's interrupt
	// flag (default 20ms).
	InterruptPoll time.Duration
}

// Facade is the fleet coordinator daemon: a service/server instance
// whose runner dispatches through a Coordinator instead of simulating
// locally. It therefore speaks the exact /v1/jobs API of a single
// slacksimd — spec validation, result caching, single-flight
// coalescing, 429 backpressure, SSE terminal events, graceful drain —
// so slacksim/client, cmd/sweep, and cmd/experiments work against a
// fleet unchanged. On top it adds /v1/fleet/* membership endpoints and
// fleet-aggregate /metrics.
//
// Job progress is not relayed from workers: a fleet job's SSE stream
// carries only the terminal event. Results are identical to local runs
// because both sides execute the same canonical spec.
type Facade struct {
	cfg   FacadeConfig
	srv   *server.Server
	coord *Coordinator
	reg   *Registry
	stop  context.CancelFunc
}

// NewFacade builds the daemon and starts its health-probe loop.
func NewFacade(cfg FacadeConfig) *Facade {
	if cfg.InterruptPoll <= 0 {
		cfg.InterruptPoll = 20 * time.Millisecond
	}
	reg := NewRegistry(cfg.Registry)
	coord := NewCoordinator(reg, cfg.Coordinator)
	f := &Facade{cfg: cfg, coord: coord, reg: reg}

	sc := cfg.Server
	sc.Runner = f.runner
	sc.Detail = func(jobID string) any {
		if at := coord.Attempts(jobID); len(at) > 0 {
			return map[string]any{"attempts": at}
		}
		return nil
	}
	f.srv = server.New(sc)

	ctx, cancel := context.WithCancel(context.Background())
	f.stop = cancel
	reg.Start(ctx)
	return f
}

// Coordinator exposes the routing layer (tests, embedding callers).
func (f *Facade) Coordinator() *Coordinator { return f.coord }

// Registry exposes fleet membership.
func (f *Facade) Registry() *Registry { return f.reg }

// Server exposes the underlying job-facing server.
func (f *Facade) Server() *server.Server { return f.srv }

// runner is the server's execution hook: it bridges the job's interrupt
// flag to a context and hands the spec to the coordinator.
func (f *Facade) runner(rc server.RunContext) (*slacksim.Results, error) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		tick := time.NewTicker(f.cfg.InterruptPoll)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				if rc.Interrupt != nil && rc.Interrupt.Load() {
					cancel()
					return
				}
			}
		}
	}()
	res, err := f.coord.Do(ctx, rc.JobID, rc.Spec)
	if err != nil && errors.Is(err, context.Canceled) && rc.Interrupt != nil && rc.Interrupt.Load() {
		return nil, slacksim.ErrInterrupted
	}
	return res, err
}

// Drain gracefully stops the daemon: admission closes, accepted jobs
// finish their dispatches, then the probe loop stops.
func (f *Facade) Drain(ctx context.Context) error {
	err := f.srv.Drain(ctx)
	f.stop()
	return err
}

// Handler returns the daemon's routes: the full single-node /v1 job API
// plus fleet membership and fleet-level metrics.
func (f *Facade) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", f.srv.Handler())
	// Exact patterns beat the "/" catch-all, so these override the inner
	// server's /metrics with the fleet-aggregate version.
	mux.HandleFunc("GET /metrics", f.handleMetrics)
	mux.HandleFunc("POST /v1/fleet/workers", f.handleJoin)
	mux.HandleFunc("DELETE /v1/fleet/workers/{id}", f.handleLeave)
	mux.HandleFunc("GET /v1/fleet/workers", f.handleWorkers)
	mux.HandleFunc("POST /v1/fleet/workers/{id}/evacuate", f.handleEvacuate)
	return mux
}

// handleEvacuate live-migrates a worker's jobs onto the rest of the
// fleet: the worker stops receiving dispatches, its running jobs export
// at their next checkpoint, and the coordinator resumes them elsewhere.
func (f *Facade) handleEvacuate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	w.Header().Set("Content-Type", "application/json")
	if err := f.coord.Evacuate(r.Context(), id); err != nil {
		w.WriteHeader(http.StatusBadGateway)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		return
	}
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "evacuating", "id": id})
}

// joinRequest is POST /v1/fleet/workers' body.
type joinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func (f *Facade) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":"bad join request: %v"}`, err), http.StatusBadRequest)
		return
	}
	if req.ID == "" || req.URL == "" {
		http.Error(w, `{"error":"join requires id and url"}`, http.StatusBadRequest)
		return
	}
	f.reg.Add(req.ID, req.URL, DialWorker(req.URL))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "joined", "id": req.ID})
}

func (f *Facade) handleLeave(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ok := f.reg.Remove(id)
	w.Header().Set("Content-Type", "application/json")
	if !ok {
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "no such worker"})
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "left", "id": id})
}

func (f *Facade) handleWorkers(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"workers": f.reg.Snapshot()})
}

// WriteMetrics emits the coordinator's own service counters (its queue,
// cache, and dispatch pool, under slacksimd_*) followed by the fleet
// aggregates scraped from the workers (under slacksimfleet_*).
func (f *Facade) WriteMetrics(w io.Writer) error {
	if err := f.srv.WriteMetrics(w); err != nil {
		return err
	}
	a := f.reg.Aggregate()
	p := promtext.NewWriter(w)
	p.Gauge("slacksimfleet_workers", "workers registered with the fleet", float64(a.Workers))
	p.Gauge("slacksimfleet_workers_healthy", "registered workers passing health probes", float64(a.Healthy))
	p.Gauge("slacksimfleet_queue_depth", "pending jobs summed across workers", float64(a.QueueDepth))
	p.Gauge("slacksimfleet_jobs_running", "running jobs summed across workers", float64(a.Running))
	p.Gauge("slacksimfleet_capacity", "simulation worker-pool slots summed across workers", float64(a.Capacity))
	p.Counter("slacksimfleet_result_cache_hits_total", "result cache hits summed across workers", float64(a.CacheHits))
	p.Counter("slacksimfleet_result_cache_misses_total", "result cache misses summed across workers", float64(a.CacheMisses))
	return p.Err()
}

func (f *Facade) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = f.WriteMetrics(w)
}
