package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/spec"
)

// fakeTransport is a scriptable worker for unit tests.
type fakeTransport struct {
	mu        sync.Mutex
	healthErr error
	load      Load
	runFn     func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error)
	resumeFn  func(ctx context.Context, snapshot []byte) (*slacksim.Results, error)
	runs      int
	resumes   int
}

func (f *fakeTransport) setHealth(err error) {
	f.mu.Lock()
	f.healthErr = err
	f.mu.Unlock()
}

func (f *fakeTransport) Healthz(ctx context.Context) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.healthErr
}

func (f *fakeTransport) Run(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
	f.mu.Lock()
	f.runs++
	fn := f.runFn
	f.mu.Unlock()
	if fn != nil {
		return fn(ctx, sp)
	}
	return &slacksim.Results{Workload: sp.Workload, Cycles: 1}, nil
}

func (f *fakeTransport) Resume(ctx context.Context, snapshot []byte) (*slacksim.Results, error) {
	f.mu.Lock()
	f.resumes++
	fn := f.resumeFn
	f.mu.Unlock()
	if fn != nil {
		return fn(ctx, snapshot)
	}
	return &slacksim.Results{Cycles: 1}, nil
}

func (f *fakeTransport) Evacuate(ctx context.Context) error { return nil }

func (f *fakeTransport) Load(ctx context.Context) (Load, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.load, nil
}

func (f *fakeTransport) runCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs
}

func quickCoord(cfg CoordinatorConfig, workers ...string) (*Coordinator, map[string]*fakeTransport) {
	reg := NewRegistry(RegistryConfig{})
	fakes := make(map[string]*fakeTransport, len(workers))
	for _, id := range workers {
		f := &fakeTransport{}
		fakes[id] = f
		reg.Add(id, "http://"+id, f)
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 5 * time.Millisecond
	}
	return NewCoordinator(reg, cfg), fakes
}

// TestRendezvousStability is the membership-churn property: adding one
// worker to n remaps roughly 1/(n+1) of the keys, and every key that
// moves, moves to the new worker — nothing reshuffles between survivors.
func TestRendezvousStability(t *testing.T) {
	base := []string{"w1", "w2", "w3", "w4"}
	pickOf := func(workers []string, key string) string {
		best, bestScore := workers[0], rendezvousScore(workers[0], key)
		for _, w := range workers[1:] {
			if s := rendezvousScore(w, key); s > bestScore {
				best, bestScore = w, s
			}
		}
		return best
	}
	const n = 200
	before := make([]string, n)
	for i := 0; i < n; i++ {
		before[i] = pickOf(base, spec.Spec{Workload: "fft", Seed: int64(i + 1)}.Key())
	}
	grown := append(append([]string(nil), base...), "w5")
	moved := 0
	for i := 0; i < n; i++ {
		after := pickOf(grown, spec.Spec{Workload: "fft", Seed: int64(i + 1)}.Key())
		if after == before[i] {
			continue
		}
		moved++
		if after != "w5" {
			t.Fatalf("key %d moved %s -> %s, not to the new worker", i, before[i], after)
		}
	}
	// Ideal is n/5 = 40; allow generous slack around the hash's variance.
	if moved < n/20 || moved > 2*n/5 {
		t.Fatalf("adding 1 of 5 workers moved %d/%d keys, want ~%d", moved, n, n/5)
	}
}

// TestAffinityRouting: the same spec key always routes to the same
// worker, and burning that worker fails over to a different one.
func TestAffinityRouting(t *testing.T) {
	c, _ := quickCoord(CoordinatorConfig{}, "w1", "w2", "w3")
	key := spec.Spec{Workload: "lu", Seed: 7}.Key()
	first, spill, err := c.pick(key, nil)
	if err != nil || spill {
		t.Fatalf("pick: %v spill=%v", err, spill)
	}
	for i := 0; i < 10; i++ {
		got, _, err := c.pick(key, nil)
		if err != nil || got != first {
			t.Fatalf("pick %d: got %s (%v), want %s", i, got, err, first)
		}
	}
	second, _, err := c.pick(key, map[string]bool{first: true})
	if err != nil || second == first {
		t.Fatalf("failover pick: %s (%v), want != %s", second, err, first)
	}
	if _, _, err := c.pick(key, map[string]bool{"w1": true, "w2": true, "w3": true}); !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("all tried: err = %v, want ErrNoWorkers", err)
	}
}

// TestSpillToLeastLoaded: when the affinity worker is saturated the job
// spills to the least-loaded healthy worker.
func TestSpillToLeastLoaded(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{SpillFactor: 2}, "w1", "w2", "w3")
	key := spec.Spec{Workload: "water", Seed: 3}.Key()
	affinity, _, err := c.pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the affinity worker (pending = 4 × capacity); leave one
	// idle worker and one mildly-busy worker.
	var idle string
	for id, f := range fakes {
		switch id {
		case affinity:
			f.load = Load{QueueDepth: 6, Running: 2, Capacity: 2}
		default:
			if idle == "" {
				idle = id
				f.load = Load{QueueDepth: 0, Running: 0, Capacity: 2}
			} else {
				f.load = Load{QueueDepth: 2, Running: 1, Capacity: 2}
			}
		}
	}
	c.reg.ProbeOnce(context.Background())
	got, spill, err := c.pick(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !spill || got != idle {
		t.Fatalf("pick = %s spill=%v, want spill to idle worker %s", got, spill, idle)
	}
	// Under the spill threshold the affinity choice sticks.
	fakes[affinity].load = Load{QueueDepth: 1, Running: 1, Capacity: 2}
	c.reg.ProbeOnce(context.Background())
	got, spill, err = c.pick(key, nil)
	if err != nil || spill || got != affinity {
		t.Fatalf("pick = %s spill=%v (%v), want affinity %s", got, spill, err, affinity)
	}
}

// pickFavoring returns a spec whose key's rendezvous choice among
// workers is want.
func pickFavoring(t *testing.T, c *Coordinator, want string) spec.Spec {
	t.Helper()
	for seed := int64(1); seed < 1000; seed++ {
		sp := spec.Spec{Workload: "fft", Cores: 2, Seed: seed}
		if got, _, err := c.pick(sp.Key(), nil); err == nil && got == want {
			return sp
		}
	}
	t.Fatal("no seed routes to " + want)
	return spec.Spec{}
}

// TestFailoverOnWorkerDeathMidJob is the tentpole failure drill: a
// worker dies while running a dispatched job; the in-flight call is
// cancelled, the attempt fails over to a surviving worker, and the job
// still returns its result — with both attempts in the history.
func TestFailoverOnWorkerDeathMidJob(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1", "w2")
	started := make(chan struct{}, 1)
	fakes["w1"].runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	dying := NewFailableTransport(fakes["w1"])
	c.reg.Add("w1", "http://w1", dying)
	sp := pickFavoring(t, c, "w1")

	type out struct {
		res *slacksim.Results
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Do(context.Background(), "job-1", sp)
		done <- out{res, err}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatch never reached w1")
	}
	dying.Down()

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("Do after failover: %v", o.err)
		}
		if o.res == nil || o.res.Workload != "fft" {
			t.Fatalf("bad result: %+v", o.res)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("failover never completed")
	}
	at := c.Attempts("job-1")
	if len(at) < 2 {
		t.Fatalf("attempts = %+v, want >= 2", at)
	}
	if at[0].Worker != "w1" || at[0].Error == "" {
		t.Fatalf("first attempt should be w1 failing: %+v", at[0])
	}
	last := at[len(at)-1]
	if last.Worker != "w2" || last.Error != "" {
		t.Fatalf("last attempt should be w2 succeeding: %+v", last)
	}
	if fakes["w2"].runCount() != 1 {
		t.Fatalf("w2 runs = %d, want 1", fakes["w2"].runCount())
	}
}

// TestPermanentFailuresAreNotRetried: deterministic run failures and
// 4xx rejections return immediately instead of burning every worker.
func TestPermanentFailuresAreNotRetried(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"run failed", &RunFailedError{State: "failed", Msg: "functional check failed"}},
		{"bad request", &client.StatusError{Code: 400, Status: "400 Bad Request", Msg: "bad spec"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1", "w2")
			for _, f := range fakes {
				err := tc.err
				f.runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
					return nil, err
				}
			}
			_, err := c.Do(context.Background(), "j", spec.Spec{Workload: "fft", Seed: 1})
			if err == nil {
				t.Fatal("Do succeeded")
			}
			if total := fakes["w1"].runCount() + fakes["w2"].runCount(); total != 1 {
				t.Fatalf("dispatches = %d, want exactly 1 (no retries)", total)
			}
		})
	}
}

// TestTransientFailuresRetryAcrossWorkers: a 5xx is retried on another
// worker and succeeds.
func TestTransientFailuresRetryAcrossWorkers(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1", "w2")
	sp := pickFavoring(t, c, "w1")
	fakes["w1"].runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
		return nil, &client.StatusError{Code: 500, Status: "500 Internal Server Error", Msg: "boom"}
	}
	res, err := c.Do(context.Background(), "j", sp)
	if err != nil || res == nil {
		t.Fatalf("Do: %v", err)
	}
	if fakes["w1"].runCount() != 1 || fakes["w2"].runCount() != 1 {
		t.Fatalf("runs w1=%d w2=%d, want 1 and 1", fakes["w1"].runCount(), fakes["w2"].runCount())
	}
}

// TestRegistryProbeMarksDownDrainsAndRecovers: FailThreshold consecutive
// probe failures mark the worker down and cancel its in-flight
// dispatches; a later success brings it back.
func TestRegistryProbeMarksDownDrainsAndRecovers(t *testing.T) {
	reg := NewRegistry(RegistryConfig{FailThreshold: 2, ProbeTimeout: time.Second})
	f := &fakeTransport{}
	reg.Add("w1", "http://w1", f)

	ctx, cancel := context.WithCancel(context.Background())
	release, ok := reg.track("w1", cancel)
	if !ok {
		t.Fatal("track on healthy worker refused")
	}
	defer release()

	f.setHealth(fmt.Errorf("connection refused"))
	reg.ProbeOnce(context.Background())
	if got := reg.healthy(); len(got) != 1 {
		t.Fatalf("one failed probe already removed the worker: %v", got)
	}
	reg.ProbeOnce(context.Background())
	if got := reg.healthy(); len(got) != 0 {
		t.Fatalf("worker still healthy after %d failed probes: %v", 2, got)
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("marking the worker down did not drain its in-flight dispatch")
	}
	if _, ok := reg.track("w1", func() {}); ok {
		t.Fatal("track on unhealthy worker accepted")
	}

	f.setHealth(nil)
	reg.ProbeOnce(context.Background())
	if got := reg.healthy(); len(got) != 1 {
		t.Fatalf("worker did not recover: %v", got)
	}
}

// TestGracefulRemoveKeepsInflight: deregistering (graceful leave) stops
// routing but lets in-flight dispatches finish.
func TestGracefulRemoveKeepsInflight(t *testing.T) {
	reg := NewRegistry(RegistryConfig{})
	reg.Add("w1", "http://w1", &fakeTransport{})
	ctx, cancel := context.WithCancel(context.Background())
	release, ok := reg.track("w1", cancel)
	if !ok {
		t.Fatal("track refused")
	}
	defer release()
	if !reg.Remove("w1") {
		t.Fatal("remove failed")
	}
	if got := reg.healthy(); len(got) != 0 {
		t.Fatalf("removed worker still routable: %v", got)
	}
	select {
	case <-ctx.Done():
		t.Fatal("graceful leave cancelled an in-flight dispatch")
	default:
	}
}

// TestDoHonorsCallerCancellation: the caller's context ending returns
// promptly as the context error, not as a worker fault.
func TestDoHonorsCallerCancellation(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1")
	fakes["w1"].runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Do(ctx, "j", spec.Spec{Workload: "fft", Seed: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("Do took %v after cancellation", since)
	}
}

// TestDoCallerCancelMidDispatchNoFailover: cancelling the submitting
// caller's context mid-dispatch is permanent — the attempt's wrapped
// context.Canceled must not be reclassified as a worker fault and
// retried on the other worker.
func TestDoCallerCancelMidDispatchNoFailover(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1", "w2")
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 2)
	for _, f := range fakes {
		f.runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
			started <- struct{}{}
			<-ctx.Done()
			// Transports wrap the cancellation the way an HTTP round trip
			// would; classification must not depend on the exact shape.
			return nil, fmt.Errorf("post /v1/jobs: %w", ctx.Err())
		}
	}
	go func() {
		<-started
		cancel()
	}()
	_, err := c.Do(ctx, "j", spec.Spec{Workload: "fft", Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if total := fakes["w1"].runCount() + fakes["w2"].runCount(); total != 1 {
		t.Fatalf("dispatches = %d, want exactly 1 (caller gave up; no failover)", total)
	}
}

// TestDoCancelledBeforeDispatch: a context that is already dead never
// reaches a worker at all.
func TestDoCancelledBeforeDispatch(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Do(ctx, "j", spec.Spec{Workload: "fft", Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := fakes["w1"].runCount(); n != 0 {
		t.Fatalf("dispatches = %d, want 0 for a dead caller context", n)
	}
}

// TestNoWorkers: a fleet with no registered workers fails cleanly.
func TestNoWorkers(t *testing.T) {
	c, _ := quickCoord(CoordinatorConfig{MaxAttempts: 2})
	_, err := c.Do(context.Background(), "j", spec.Spec{Workload: "fft", Seed: 1})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

// TestAttemptHistoryBounded: histories evict FIFO past MaxHistories.
func TestAttemptHistoryBounded(t *testing.T) {
	c, _ := quickCoord(CoordinatorConfig{MaxHistories: 4}, "w1")
	for i := 0; i < 10; i++ {
		if _, err := c.Do(context.Background(), fmt.Sprintf("job-%d", i), spec.Spec{Workload: "fft", Seed: int64(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Attempts("job-0"); got != nil {
		t.Fatalf("oldest history not evicted: %+v", got)
	}
	if got := c.Attempts("job-9"); len(got) != 1 {
		t.Fatalf("newest history missing: %+v", got)
	}
}
