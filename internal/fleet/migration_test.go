package fleet

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/service/server"
	"slacksim/internal/spec"
)

// TestCoordinatorResumesMigratedRun: a worker hands back a run as a
// *MigratedError with a snapshot; the coordinator immediately redispatches
// it to another worker via Resume, carrying the snapshot, with both the
// migration and the resumption visible in the attempt history.
func TestCoordinatorResumesMigratedRun(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1", "w2")
	blob := []byte("exported-checkpoint-state")
	fakes["w1"].runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
		return nil, &MigratedError{Snapshot: blob}
	}
	var got []byte
	var mu sync.Mutex
	fakes["w2"].resumeFn = func(ctx context.Context, snapshot []byte) (*slacksim.Results, error) {
		mu.Lock()
		got = snapshot
		mu.Unlock()
		return &slacksim.Results{Workload: "fft", Cycles: 9}, nil
	}
	sp := pickFavoring(t, c, "w1")

	res, err := c.Do(context.Background(), "job-m", sp)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.Cycles != 9 {
		t.Fatalf("result = %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, blob) {
		t.Fatalf("w2 resumed with %q, want the exported snapshot", got)
	}
	if fakes["w2"].runCount() != 0 {
		t.Fatal("w2 should have resumed, not re-run from spec")
	}
	at := c.Attempts("job-m")
	if len(at) != 2 {
		t.Fatalf("attempts = %+v, want 2", at)
	}
	if !at[0].Migrated || at[0].Worker != "w1" {
		t.Fatalf("first attempt should be the migration off w1: %+v", at[0])
	}
	if !at[1].Resumed || at[1].Worker != "w2" || at[1].Error != "" {
		t.Fatalf("second attempt should resume on w2: %+v", at[1])
	}
}

// TestCoordinatorRestartsEjectedPendingJob: a job ejected while still
// pending has no snapshot; the next attempt restarts it from its spec
// (Run, not Resume) — correct because runs are deterministic.
func TestCoordinatorRestartsEjectedPendingJob(t *testing.T) {
	c, fakes := quickCoord(CoordinatorConfig{MaxAttempts: 4}, "w1", "w2")
	fakes["w1"].runFn = func(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
		return nil, &MigratedError{} // ejected before starting
	}
	sp := pickFavoring(t, c, "w1")

	res, err := c.Do(context.Background(), "job-e", sp)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res == nil || res.Workload != "fft" {
		t.Fatalf("result = %+v", res)
	}
	fakes["w2"].mu.Lock()
	runs, resumes := fakes["w2"].runs, fakes["w2"].resumes
	fakes["w2"].mu.Unlock()
	if runs != 1 || resumes != 0 {
		t.Fatalf("w2 runs=%d resumes=%d, want a fresh run from spec", runs, resumes)
	}
	at := c.Attempts("job-e")
	if len(at) != 2 || !at[0].Migrated || at[1].Resumed {
		t.Fatalf("attempts = %+v", at)
	}
}

// TestEvacuateLiveMigratesByteIdentical is the migration acceptance
// gate: a checkpointing run is dispatched to a real worker, the worker
// is evacuated mid-run, the coordinator resumes the exported state on
// the other worker, and the final results are byte-identical to an
// uninterrupted local run.
func TestEvacuateLiveMigratesByteIdentical(t *testing.T) {
	_, t1 := newWorker(t)
	_, t2 := newWorker(t)
	workers := map[string]Transport{"w1": t1, "w2": t2}
	f, c := newFleet(t, FacadeConfig{
		Server: server.Config{Workers: 4, QueueDepth: 16},
		Coordinator: CoordinatorConfig{
			MaxAttempts: 5, BackoffBase: time.Millisecond, BackoffMax: 20 * time.Millisecond,
		},
		Registry: RegistryConfig{
			ProbeInterval: 10 * time.Millisecond, ProbeTimeout: 2 * time.Second, FailThreshold: 3,
		},
	}, workers)

	// Long enough to evacuate mid-run (~1s), checkpointing often enough
	// (every 256 of ~600k cycles) that the export happens almost at once.
	sp := spec.Spec{
		Workload: "fft", Scheme: "s8", Cores: 2, Seed: 1, Scale: 32,
		CheckpointInterval: 256,
	}
	want := canonJSON(t, runLocally(t, sp))

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	type out struct {
		j   *client.Job
		err error
	}
	done := make(chan out, 1)
	go func() {
		j, err := c.SubmitWait(ctx, sp, 2*time.Millisecond)
		done <- out{j, err}
	}()

	// Find the worker actually running the job, then evacuate it through
	// the fleet API.
	victim := ""
	deadline := time.Now().Add(30 * time.Second)
	for victim == "" && time.Now().Before(deadline) {
		for id, tr := range workers {
			if load, err := tr.Load(ctx); err == nil && load.Running > 0 {
				victim = id
				break
			}
		}
		if victim == "" {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if victim == "" {
		t.Fatal("job never started on a worker")
	}
	hc := &http.Client{Transport: handlerRoundTripper{h: f.Handler()}}
	resp, err := hc.Post("http://fleet/v1/fleet/workers/"+victim+"/evacuate", "application/json", strings.NewReader(""))
	if err != nil {
		t.Fatalf("evacuate: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("evacuate status = %d", resp.StatusCode)
	}

	o := <-done
	if o.err != nil {
		t.Fatalf("job lost in migration: %v", o.err)
	}
	if o.j.State != "done" || o.j.Result == nil {
		t.Fatalf("job %s: %s", o.j.State, o.j.Error)
	}
	if got := canonJSON(t, o.j.Result); !bytes.Equal(got, want) {
		t.Fatalf("migrated result differs from uninterrupted run:\n got %s\nwant %s", got, want)
	}

	// The evacuated worker must be draining (still registered, no longer
	// routed), and the migration must show up in the attempt history.
	for _, wi := range f.Registry().Snapshot() {
		if wi.ID == victim && !wi.Draining {
			t.Fatalf("victim %s not draining: %+v", victim, wi)
		}
	}
	at := f.Coordinator().Attempts(o.j.ID)
	if len(at) < 2 {
		t.Fatalf("attempts = %+v, want migration + resume", at)
	}
	sawMigration, sawResume := false, false
	for _, a := range at {
		if a.Migrated && a.Worker == victim {
			sawMigration = true
		}
		if a.Resumed && a.Error == "" {
			sawResume = true
		}
	}
	if !sawMigration || !sawResume {
		t.Fatalf("attempt history missing migration/resume: %+v", at)
	}
}
