package fleet

import "hash/fnv"

// rendezvousScore ranks worker w for key k: highest score wins
// (highest-random-weight hashing). Every key gets an independent
// pseudo-random permutation of the workers, so (a) a given spec digest
// always prefers the same worker — its results are already in that
// worker's LRU cache — and (b) adding or removing one of n workers
// remaps only ~1/n of the keys, so a membership change does not flush
// the fleet's collective cache.
func rendezvousScore(worker, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(worker))
	h.Write([]byte{'|'})
	h.Write([]byte(key))
	return h.Sum64()
}
