package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/promtext"
	"slacksim/internal/spec"
)

// Transport is how the coordinator talks to one worker. Implementations
// must be safe for concurrent use.
type Transport interface {
	// Healthz reports whether the worker is accepting work.
	Healthz(ctx context.Context) error
	// Run submits sp and blocks until the job is terminal, returning its
	// results. A job that terminates unsuccessfully is a *RunFailedError;
	// a job the worker checkpoint-migrated is a *MigratedError carrying
	// its snapshot; transport-level failures come back as-is for retry
	// classification.
	Run(ctx context.Context, sp spec.Spec) (*slacksim.Results, error)
	// Resume submits an exported snapshot and blocks until the continued
	// run is terminal, with the same error contract as Run.
	Resume(ctx context.Context, snapshot []byte) (*slacksim.Results, error)
	// Evacuate asks the worker to hand off all its work: pending jobs are
	// ejected, running jobs checkpoint-migrate. In-flight Run/Resume
	// calls then return *MigratedError as their jobs export.
	Evacuate(ctx context.Context) error
	// Load scrapes the worker's /metrics for its current load sample.
	Load(ctx context.Context) (Load, error)
}

// HTTPTransport drives one slacksimd worker over its /v1 JSON API.
type HTTPTransport struct {
	c    *client.Client
	poll time.Duration
}

// NewHTTPTransport wraps a slacksim client as a worker transport.
func NewHTTPTransport(c *client.Client, poll time.Duration) *HTTPTransport {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	return &HTTPTransport{c: c, poll: poll}
}

// DialWorker builds the standard HTTP transport for a worker base URL.
func DialWorker(baseURL string) *HTTPTransport {
	return NewHTTPTransport(client.New(baseURL), 0)
}

// Healthz implements Transport.
func (t *HTTPTransport) Healthz(ctx context.Context) error { return t.c.Healthz(ctx) }

// Run implements Transport: SubmitWait against the worker, then fold a
// terminal non-done state into a permanent *RunFailedError — except
// "migrated", which becomes a retryable *MigratedError carrying the
// job's exported snapshot.
func (t *HTTPTransport) Run(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
	j, err := t.c.SubmitWait(ctx, sp, t.poll)
	if err != nil {
		return nil, err
	}
	return t.fold(ctx, j)
}

// Resume implements Transport: continue a snapshot on this worker and
// wait for the terminal state, with Run's folding rules (a resumed run
// can itself be migrated onward).
func (t *HTTPTransport) Resume(ctx context.Context, snapshot []byte) (*slacksim.Results, error) {
	for {
		j, err := t.c.Resume(ctx, snapshot)
		var re *client.RetryError
		if errors.As(err, &re) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(re.After + 250*time.Millisecond):
				continue
			}
		}
		if err != nil {
			return nil, err
		}
		if !j.Terminal() {
			if j, err = t.c.Wait(ctx, j.ID, t.poll); err != nil {
				return nil, err
			}
		}
		return t.fold(ctx, j)
	}
}

// Evacuate implements Transport.
func (t *HTTPTransport) Evacuate(ctx context.Context) error {
	_, _, err := t.c.Evacuate(ctx)
	return err
}

// fold turns a terminal job into the Transport error contract.
func (t *HTTPTransport) fold(ctx context.Context, j *client.Job) (*slacksim.Results, error) {
	switch {
	case j.State == "done" && j.Result != nil:
		return j.Result, nil
	case j.State == "migrated":
		// Fetch the exported state; a job ejected while pending has none
		// and restarts from its spec (nil snapshot).
		blob, err := t.c.Snapshot(ctx, j.ID)
		if err != nil {
			var se *client.StatusError
			if errors.As(err, &se) && se.Code == 404 {
				return nil, &MigratedError{}
			}
			return nil, err
		}
		return nil, &MigratedError{Snapshot: blob}
	default:
		return nil, &RunFailedError{State: j.State, Msg: j.Error}
	}
}

// Load implements Transport by scraping and parsing GET /metrics.
func (t *HTTPTransport) Load(ctx context.Context) (Load, error) {
	blob, err := t.c.Metrics(ctx)
	if err != nil {
		return Load{}, err
	}
	m, err := promtext.Parse(bytes.NewReader(blob))
	if err != nil {
		return Load{}, err
	}
	return Load{
		QueueDepth:  int(m["slacksimd_queue_depth"]),
		Running:     int(m["slacksimd_jobs_running"]),
		Capacity:    int(m["slacksimd_workers"]),
		CacheHits:   uint64(m["slacksimd_result_cache_hits_total"]),
		CacheMisses: uint64(m["slacksimd_result_cache_misses_total"]),
	}, nil
}

// handlerRoundTripper serves every request by invoking an http.Handler
// directly on the caller's goroutine — the same handlers, routes, and
// status codes as a real listener, without a socket.
type handlerRoundTripper struct{ h http.Handler }

func (t handlerRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rec := newRecorder()
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		StatusCode: rec.code,
		Status:     http.StatusText(rec.code),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     rec.header,
		Body:       readCloser{bytes.NewReader(rec.body.Bytes())},
		Request:    req,
	}, nil
}

type readCloser struct{ *bytes.Reader }

func (readCloser) Close() error { return nil }

// recorder is the minimal ResponseWriter handlerRoundTripper needs; it
// also implements Flusher so SSE handlers do not reject the connection.
type recorder struct {
	code   int
	header http.Header
	body   bytes.Buffer
}

func newRecorder() *recorder { return &recorder{code: http.StatusOK, header: http.Header{}} }

func (r *recorder) Header() http.Header         { return r.header }
func (r *recorder) WriteHeader(code int)        { r.code = code }
func (r *recorder) Write(b []byte) (int, error) { return r.body.Write(b) }
func (r *recorder) Flush()                      {}

// InprocTransport builds a Transport that talks to an in-process worker
// through its real HTTP handler — the full client and server code paths
// run, but no socket is opened. Tests and single-binary fleets use it.
func InprocTransport(h http.Handler) *HTTPTransport {
	hc := &http.Client{Transport: handlerRoundTripper{h: h}}
	return NewHTTPTransport(client.NewWithHTTPClient("http://inproc", hc), time.Millisecond)
}

// FailableTransport wraps a Transport with a kill switch, simulating a
// worker dying mid-job: after Down, in-flight calls are cancelled (an
// HTTP transport would see the connection drop) and new calls fail
// immediately with ErrWorkerDown.
type FailableTransport struct {
	inner Transport

	mu       sync.Mutex
	down     bool
	inflight map[int]context.CancelFunc
	nextID   int
}

// NewFailableTransport wraps inner.
func NewFailableTransport(inner Transport) *FailableTransport {
	return &FailableTransport{inner: inner, inflight: make(map[int]context.CancelFunc)}
}

// Down kills the worker: cancels every in-flight call and fails all
// future ones.
func (f *FailableTransport) Down() {
	f.mu.Lock()
	f.down = true
	for id, cancel := range f.inflight {
		delete(f.inflight, id)
		cancel()
	}
	f.mu.Unlock()
}

// Up revives the worker.
func (f *FailableTransport) Up() {
	f.mu.Lock()
	f.down = false
	f.mu.Unlock()
}

func (f *FailableTransport) begin(ctx context.Context) (context.Context, func(), error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return nil, nil, fmt.Errorf("%w: injected failure", ErrWorkerDown)
	}
	ctx, cancel := context.WithCancel(ctx)
	id := f.nextID
	f.nextID++
	f.inflight[id] = cancel
	return ctx, func() {
		f.mu.Lock()
		delete(f.inflight, id)
		f.mu.Unlock()
		cancel()
	}, nil
}

// Healthz implements Transport.
func (f *FailableTransport) Healthz(ctx context.Context) error {
	ctx, done, err := f.begin(ctx)
	if err != nil {
		return err
	}
	defer done()
	return f.inner.Healthz(ctx)
}

// Run implements Transport.
func (f *FailableTransport) Run(ctx context.Context, sp spec.Spec) (*slacksim.Results, error) {
	ctx, done, err := f.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	res, err := f.inner.Run(ctx, sp)
	if err != nil && ctx.Err() != nil {
		f.mu.Lock()
		wasDown := f.down
		f.mu.Unlock()
		if wasDown {
			return nil, fmt.Errorf("%w: connection lost mid-job", ErrWorkerDown)
		}
	}
	return res, err
}

// Resume implements Transport.
func (f *FailableTransport) Resume(ctx context.Context, snapshot []byte) (*slacksim.Results, error) {
	ctx, done, err := f.begin(ctx)
	if err != nil {
		return nil, err
	}
	defer done()
	res, err := f.inner.Resume(ctx, snapshot)
	if err != nil && ctx.Err() != nil {
		f.mu.Lock()
		wasDown := f.down
		f.mu.Unlock()
		if wasDown {
			return nil, fmt.Errorf("%w: connection lost mid-job", ErrWorkerDown)
		}
	}
	return res, err
}

// Evacuate implements Transport.
func (f *FailableTransport) Evacuate(ctx context.Context) error {
	ctx, done, err := f.begin(ctx)
	if err != nil {
		return err
	}
	defer done()
	return f.inner.Evacuate(ctx)
}

// Load implements Transport.
func (f *FailableTransport) Load(ctx context.Context) (Load, error) {
	ctx, done, err := f.begin(ctx)
	if err != nil {
		return Load{}, err
	}
	defer done()
	return f.inner.Load(ctx)
}
