// Package fleet schedules canonical slack-simulation run specs
// (internal/spec) across a registry of slacksimd workers, turning a
// collection of single-node daemons into one horizontally-scaled
// simulation service — the throughput shape of the paper's workload:
// sweeps and experiment grids are embarrassingly parallel collections of
// deterministic runs, so they farm out across machines with results
// identical to local execution.
//
// The pieces:
//
//   - Registry: worker join/leave plus periodic /v1/healthz probing;
//     consecutive probe failures mark a worker unhealthy, cancel the
//     dispatches in flight on it (draining its assignments back into the
//     retry path), and take it out of the routing set until it recovers.
//   - Routing: rendezvous hashing on the spec digest gives every spec a
//     stable preferred worker, so repeated and coalesced submissions of
//     the same spec land where the LRU result cache already holds the
//     answer; when the preferred worker is overloaded the job spills to
//     the least-loaded healthy worker instead of queueing behind it.
//   - Coordinator: bounded retries with exponential backoff and jitter,
//     failing over to a different worker on timeouts, transport errors,
//     5xx and 429; every attempt is recorded and surfaced in the job
//     view. Deterministic simulation failures are not retried — a run
//     that fails on one worker fails identically everywhere.
//   - Transport: how the coordinator talks to one worker. HTTP (via
//     slacksim/client) for real deployments; an in-process transport
//     drives the same HTTP handlers through a direct RoundTripper so
//     unit tests need no sockets.
//   - Driver: satisfies the internal/experiments execution hook, so
//     Fig3/Fig4/Table2-5/sweeps fan out across the fleet unchanged.
//   - Facade: a service/server instance whose Runner dispatches through
//     the coordinator, exposing the exact /v1/jobs API of a single
//     slacksimd — slacksim/client and cmd/sweep work unchanged against
//     a fleet — plus /v1/fleet/* registry endpoints and fleet /metrics.
package fleet

import (
	"errors"
	"fmt"
	"time"
)

// Errors surfaced by the coordinator.
var (
	// ErrNoWorkers reports that no healthy worker is routable.
	ErrNoWorkers = errors.New("fleet: no healthy workers")
	// ErrWorkerDown reports a transport whose worker is gone.
	ErrWorkerDown = errors.New("fleet: worker is down")
)

// RunFailedError reports a job that reached a worker and finished in a
// terminal non-done state. It is permanent: simulations are
// deterministic functions of their spec, so the run would fail
// identically on every other worker.
type RunFailedError struct {
	State string
	Msg   string
}

func (e *RunFailedError) Error() string {
	return fmt.Sprintf("fleet: run %s: %s", e.State, e.Msg)
}

// MigratedError reports a dispatch whose worker checkpoint-migrated the
// job instead of finishing it (evacuation, or an explicit migrate).
// Snapshot is the exported state to continue from on another worker —
// nil when the job was ejected while still pending, in which case it
// simply restarts from its spec. Always retryable: the work is intact,
// it just needs a new home.
type MigratedError struct {
	Snapshot []byte
}

func (e *MigratedError) Error() string {
	if len(e.Snapshot) == 0 {
		return "fleet: job ejected before starting; restart from spec"
	}
	return fmt.Sprintf("fleet: job migrated with %d-byte snapshot", len(e.Snapshot))
}

// Attempt is one dispatch of a job to one worker, kept per job and
// surfaced through the coordinator's job view.
type Attempt struct {
	// Worker is the target worker's ID.
	Worker string `json:"worker"`
	// Start is when the dispatch began.
	Start time.Time `json:"start"`
	// DurationMS is how long the attempt took, in milliseconds.
	DurationMS int64 `json:"duration_ms"`
	// Error is the attempt's failure ("" on success).
	Error string `json:"error,omitempty"`
	// Spill marks an attempt routed away from the rendezvous choice by
	// load-aware spill.
	Spill bool `json:"spill,omitempty"`
	// Resumed marks an attempt that continued a migrated run from its
	// snapshot instead of starting from the spec.
	Resumed bool `json:"resumed,omitempty"`
	// Migrated marks an attempt that ended with the worker exporting the
	// run's state (evacuation) rather than failing.
	Migrated bool `json:"migrated,omitempty"`
}

// Load is a sample of one worker's scraped load and capacity, parsed
// from its Prometheus /metrics endpoint.
type Load struct {
	// QueueDepth is the worker's pending-job backlog.
	QueueDepth int
	// Running is the worker's jobs currently executing.
	Running int
	// Capacity is the worker's simulation worker-pool size.
	Capacity int
	// CacheHits and CacheMisses are the worker's result-cache counters,
	// re-exported in the fleet-level aggregates.
	CacheHits, CacheMisses uint64
}
