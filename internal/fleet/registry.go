package fleet

import (
	"context"
	"sort"
	"sync"
	"time"
)

// RegistryConfig parameterizes worker health probing.
type RegistryConfig struct {
	// ProbeInterval is how often every worker's /v1/healthz is probed
	// (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round trip (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is how many consecutive probe failures mark a worker
	// unhealthy (default 2, so one dropped probe is forgiven).
	FailThreshold int
}

func (c RegistryConfig) withDefaults() RegistryConfig {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	return c
}

// WorkerInfo is the externally-visible state of one registered worker,
// served from GET /v1/fleet/workers.
type WorkerInfo struct {
	ID      string `json:"id"`
	URL     string `json:"url,omitempty"`
	Healthy bool   `json:"healthy"`
	// Draining marks a worker being evacuated: still probed, not routed.
	Draining bool `json:"draining,omitempty"`
	// Fails counts consecutive failed probes (0 while healthy).
	Fails     int    `json:"consecutive_failures,omitempty"`
	LastError string `json:"last_error,omitempty"`
	// Inflight is this coordinator's dispatches currently on the worker.
	Inflight int `json:"inflight"`
	// Load mirrors the most recent /metrics scrape.
	QueueDepth  int    `json:"queue_depth"`
	Running     int    `json:"running"`
	Capacity    int    `json:"capacity"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// workerState is one registered worker plus its probe bookkeeping.
type workerState struct {
	id        string
	url       string
	transport Transport

	healthy bool // guarded by Registry.mu
	// draining marks a worker being evacuated: health probes continue
	// (its jobs are still exporting snapshots) but no new dispatches are
	// routed at it.
	draining bool   // guarded by Registry.mu
	fails    int    // guarded by Registry.mu
	lastErr  string // guarded by Registry.mu
	load     Load   // guarded by Registry.mu

	// inflight holds the cancel funcs of this coordinator's dispatches on
	// the worker; marking the worker unhealthy fires them all, draining
	// its assignments back into the coordinator's retry path.
	inflight map[int]context.CancelFunc // guarded by Registry.mu
	nextTok  int                        // guarded by Registry.mu
}

// Registry tracks fleet membership and worker health. Workers join and
// leave explicitly; a probe loop marks unresponsive workers unhealthy
// and cancels the dispatches in flight on them.
type Registry struct {
	cfg RegistryConfig

	mu      sync.Mutex
	workers map[string]*workerState // guarded by mu
}

// NewRegistry builds an empty registry.
func NewRegistry(cfg RegistryConfig) *Registry {
	return &Registry{cfg: cfg.withDefaults(), workers: make(map[string]*workerState)}
}

// Add registers (or re-registers) a worker. New workers start healthy —
// they just announced themselves — and the first probe round corrects
// that if they are not. Re-registering an existing ID replaces its
// transport and resets its health.
func (r *Registry) Add(id, url string, t Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.workers[id]; ok {
		// The old incarnation's dispatches are stale; drain them.
		for tok, cancel := range old.inflight {
			delete(old.inflight, tok)
			cancel()
		}
	}
	r.workers[id] = &workerState{
		id: id, url: url, transport: t,
		healthy:  true,
		inflight: make(map[int]context.CancelFunc),
	}
}

// Remove deregisters a worker (graceful leave). Dispatches already in
// flight on it are left to finish: the worker drains its accepted jobs
// before exiting, so cancelling them would throw away good work.
func (r *Registry) Remove(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.workers[id]
	delete(r.workers, id)
	return ok
}

// transport returns the worker's transport if it is registered.
func (r *Registry) transport(id string) (Transport, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return nil, false
	}
	return w.transport, true
}

// healthy returns the IDs of all routable workers (healthy and not
// draining).
func (r *Registry) healthy() []string {
	return r.healthyInto(nil)
}

// healthyInto fills buf[:0] with the IDs of all routable workers, so hot
// callers can reuse one backing array across picks. The returned slice
// belongs to the caller until its next healthyInto call.
func (r *Registry) healthyInto(buf []string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	ids := buf[:0]
	for id, w := range r.workers {
		if w.healthy && !w.draining {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// SetDraining marks a worker as draining (evacuation in progress): it
// stays registered and probed, but receives no new dispatches. Returns
// false for unknown workers. Re-registering via Add clears the flag.
func (r *Registry) SetDraining(id string, draining bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return false
	}
	w.draining = draining
	return true
}

// loadOf returns the worker's last scraped load sample.
func (r *Registry) loadOf(id string) (Load, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return Load{}, false
	}
	return w.load, true
}

// track registers a dispatch's cancel func under the worker so that
// marking the worker unhealthy drains it; the returned release must be
// called when the dispatch ends. A second return of false means the
// worker is gone or unhealthy and the dispatch should not start.
func (r *Registry) track(id string, cancel context.CancelFunc) (release func(), ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok || !w.healthy {
		return nil, false
	}
	tok := w.nextTok
	w.nextTok++
	w.inflight[tok] = cancel
	return func() {
		r.mu.Lock()
		delete(w.inflight, tok)
		r.mu.Unlock()
	}, true
}

// markDown transitions a worker to unhealthy and cancels every dispatch
// in flight on it. Safe to call for already-unhealthy workers.
func (r *Registry) markDown(id, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.workers[id]
	if !ok {
		return
	}
	w.healthy = false
	w.lastErr = reason
	for tok, cancel := range w.inflight {
		delete(w.inflight, tok)
		cancel()
	}
}

// ProbeOnce runs one probe round over every worker: /v1/healthz with the
// configured timeout, then (best-effort) a /metrics scrape for the load
// sample. FailThreshold consecutive failures mark the worker down and
// drain its in-flight dispatches; one success brings it back.
func (r *Registry) ProbeOnce(ctx context.Context) {
	r.mu.Lock()
	targets := make([]*workerState, 0, len(r.workers))
	for _, w := range r.workers {
		targets = append(targets, w)
	}
	timeout := r.cfg.ProbeTimeout
	threshold := r.cfg.FailThreshold
	r.mu.Unlock()

	var wg sync.WaitGroup
	for _, w := range targets {
		wg.Add(1)
		go func(w *workerState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, timeout)
			err := w.transport.Healthz(pctx)
			var load Load
			var loadErr error
			if err == nil {
				load, loadErr = w.transport.Load(pctx)
			}
			cancel()

			r.mu.Lock()
			if r.workers[w.id] != w { // removed or replaced mid-probe
				r.mu.Unlock()
				return
			}
			if err != nil {
				w.fails++
				w.lastErr = err.Error()
				if w.fails >= threshold && w.healthy {
					w.healthy = false
					for tok, cancel := range w.inflight {
						delete(w.inflight, tok)
						cancel()
					}
				}
				r.mu.Unlock()
				return
			}
			w.fails = 0
			w.healthy = true
			w.lastErr = ""
			if loadErr == nil {
				w.load = load
			}
			r.mu.Unlock()
		}(w)
	}
	wg.Wait()
}

// Start runs the probe loop until ctx is cancelled.
func (r *Registry) Start(ctx context.Context) {
	go func() {
		tick := time.NewTicker(r.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				r.ProbeOnce(ctx)
			}
		}
	}()
}

// Snapshot lists every registered worker, sorted by ID.
func (r *Registry) Snapshot() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]WorkerInfo, 0, len(r.workers))
	for _, w := range r.workers {
		out = append(out, WorkerInfo{
			ID:          w.id,
			URL:         w.url,
			Healthy:     w.healthy,
			Draining:    w.draining,
			Fails:       w.fails,
			LastError:   w.lastErr,
			Inflight:    len(w.inflight),
			QueueDepth:  w.load.QueueDepth,
			Running:     w.load.Running,
			Capacity:    w.load.Capacity,
			CacheHits:   w.load.CacheHits,
			CacheMisses: w.load.CacheMisses,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Aggregate sums the fleet's scraped load for the /metrics re-export.
type Aggregate struct {
	Workers, Healthy       int
	QueueDepth, Running    int
	Capacity               int
	CacheHits, CacheMisses uint64
}

// Aggregate returns fleet-wide load totals over the last probe round.
func (r *Registry) Aggregate() Aggregate {
	r.mu.Lock()
	defer r.mu.Unlock()
	var a Aggregate
	for _, w := range r.workers {
		a.Workers++
		if w.healthy {
			a.Healthy++
		}
		a.QueueDepth += w.load.QueueDepth
		a.Running += w.load.Running
		a.Capacity += w.load.Capacity
		a.CacheHits += w.load.CacheHits
		a.CacheMisses += w.load.CacheMisses
	}
	return a
}
