package fleet

import (
	"context"
	"fmt"

	"slacksim/client"
	"slacksim/internal/engine"
	"slacksim/internal/spec"
)

// Driver adapts fleet execution to the internal/experiments execution
// hook (Config.Exec): each grid cell's engine.RunConfig is converted to
// a canonical spec and executed remotely, so Fig3/Fig4/Table2-5 and the
// sweeps fan out across the fleet with the exact per-cell results a
// local engine.Run would produce (the spec round trip is lossless for
// everything the experiments use).
type Driver struct {
	ctx context.Context
	run func(ctx context.Context, sp spec.Spec) (*engine.Results, error)
}

// NewDriver drives an in-process Coordinator (the fleet daemon itself,
// or tests wiring workers directly).
func NewDriver(ctx context.Context, coord *Coordinator) *Driver {
	return &Driver{ctx: ctx, run: func(ctx context.Context, sp spec.Spec) (*engine.Results, error) {
		return coord.Do(ctx, "", sp)
	}}
}

// NewRemoteDriver drives a coordinator (or any slacksimd) through its
// /v1/jobs API — what cmd/experiments -fleet uses.
func NewRemoteDriver(ctx context.Context, c *client.Client) *Driver {
	t := NewHTTPTransport(c, 0)
	return &Driver{ctx: ctx, run: t.Run}
}

// Exec satisfies experiments.Config.Exec.
func (d *Driver) Exec(workload string, scale, cores int, rc engine.RunConfig) (engine.Results, error) {
	sp, err := spec.FromRun(workload, scale, cores, rc)
	if err != nil {
		return engine.Results{}, fmt.Errorf("fleet driver: %w", err)
	}
	ctx := d.ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := d.run(ctx, sp)
	if err != nil {
		return engine.Results{}, err
	}
	return *res, nil
}
