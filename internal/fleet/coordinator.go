package fleet

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/spec"
)

// CoordinatorConfig parameterizes dispatch behavior.
type CoordinatorConfig struct {
	// MaxAttempts bounds how many dispatches one job may consume
	// (default 4). Each attempt prefers a worker not yet tried.
	MaxAttempts int
	// BackoffBase is the first retry delay (default 100ms); each further
	// retry doubles it, capped at BackoffMax (default 5s), with up to
	// ±50% jitter so a burst of failed jobs does not retry in lockstep.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// SpillFactor triggers load-aware spill: when the rendezvous-chosen
	// worker's pending work (queue depth + running) reaches SpillFactor ×
	// its capacity, the job goes to the least-loaded healthy worker
	// instead (default 2.0). Zero capacity (no scrape yet) never spills.
	SpillFactor float64
	// MaxHistories bounds the per-job attempt histories kept for the job
	// view (default 4096, matching the job queue's retention).
	MaxHistories int
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.SpillFactor <= 0 {
		c.SpillFactor = 2.0
	}
	if c.MaxHistories <= 0 {
		c.MaxHistories = 4096
	}
	return c
}

// Coordinator routes run specs to workers: rendezvous hashing on the
// spec key for cache affinity, spill to the least-loaded worker under
// overload, and bounded retries with failover on transient failures.
type Coordinator struct {
	cfg CoordinatorConfig
	reg *Registry

	rmu sync.Mutex
	rng *rand.Rand // guarded by rmu

	// amu guards the attempt histories (jobID → dispatches), bounded to
	// MaxHistories by FIFO eviction.
	amu      sync.Mutex
	attempts map[string][]Attempt // guarded by amu
	order    []string             // guarded by amu
}

// NewCoordinator builds a coordinator over reg.
func NewCoordinator(reg *Registry, cfg CoordinatorConfig) *Coordinator {
	return &Coordinator{
		cfg:      cfg.withDefaults(),
		reg:      reg,
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		attempts: make(map[string][]Attempt),
	}
}

// Registry returns the coordinator's worker registry.
func (c *Coordinator) Registry() *Registry { return c.reg }

// pick chooses the worker for one attempt: the highest rendezvous score
// among healthy workers not yet tried, spilled to the least-loaded such
// worker when the affinity choice is saturated.
func (c *Coordinator) pick(key string, tried map[string]bool) (id string, spill bool, err error) {
	var scratch []string
	return c.pickInto(&scratch, key, tried)
}

// pickInto is pick with a caller-owned scratch buffer: Do threads one
// buffer through its retry loop so repeated picks share a single
// healthy-worker list instead of allocating one per attempt.
//
//slacksim:hotpath
func (c *Coordinator) pickInto(scratch *[]string, key string, tried map[string]bool) (id string, spill bool, err error) {
	candidates := c.reg.healthyInto(*scratch)
	*scratch = candidates
	avail := candidates[:0]
	for _, w := range candidates {
		if !tried[w] {
			avail = append(avail, w)
		}
	}
	if len(avail) == 0 {
		return "", false, ErrNoWorkers
	}
	best := avail[0]
	bestScore := rendezvousScore(best, key)
	for _, w := range avail[1:] {
		if s := rendezvousScore(w, key); s > bestScore {
			best, bestScore = w, s
		}
	}
	if len(avail) == 1 {
		return best, false, nil
	}
	load, ok := c.reg.loadOf(best)
	if !ok || load.Capacity <= 0 {
		return best, false, nil
	}
	pending := load.QueueDepth + load.Running
	if float64(pending) < c.cfg.SpillFactor*float64(load.Capacity) {
		return best, false, nil
	}
	// The affinity target is saturated: spill to the least relative load.
	target, targetRel := best, relLoad(load)
	for _, w := range avail {
		if w == best {
			continue
		}
		wl, ok := c.reg.loadOf(w)
		if !ok {
			continue
		}
		if rel := relLoad(wl); rel < targetRel {
			target, targetRel = w, rel
		}
	}
	return target, target != best, nil
}

// relLoad is pending work normalized by capacity, for spill comparison.
func relLoad(l Load) float64 {
	cap := l.Capacity
	if cap <= 0 {
		cap = 1
	}
	return float64(l.QueueDepth+l.Running) / float64(cap)
}

// backoff returns the jittered delay before retry n (0-based).
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.BackoffBase << uint(n)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.rmu.Lock()
	jitter := 0.5 + c.rng.Float64() // 0.5x .. 1.5x
	c.rmu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// permanent reports whether err cannot succeed on any worker: the run
// itself failed (deterministic) or the spec was rejected (4xx other
// than 429). Context errors are deliberately NOT classified here — an
// error wrapping context.Canceled is permanent only when the submitting
// caller's own ctx ended, and retryable when it is the health probe
// cancelling a dispatch to a worker that died mid-run. Do discriminates
// the two at the call site by checking the caller's ctx.Err().
func permanent(err error) bool {
	var rf *RunFailedError
	if errors.As(err, &rf) {
		return true
	}
	var se *client.StatusError
	if errors.As(err, &se) {
		return !se.Temporary()
	}
	return false
}

// record appends one attempt to the job's history, evicting the oldest
// history past the retention bound.
func (c *Coordinator) record(jobID string, a Attempt) {
	if jobID == "" {
		return
	}
	c.amu.Lock()
	defer c.amu.Unlock()
	if _, ok := c.attempts[jobID]; !ok {
		c.order = append(c.order, jobID)
		for len(c.order) > c.cfg.MaxHistories {
			delete(c.attempts, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.attempts[jobID] = append(c.attempts[jobID], a)
}

// Attempts returns the job's dispatch history (nil when unknown). The
// fleet façade surfaces it as the job view's "detail" field.
func (c *Coordinator) Attempts(jobID string) []Attempt {
	c.amu.Lock()
	defer c.amu.Unlock()
	h := c.attempts[jobID]
	if h == nil {
		return nil
	}
	out := make([]Attempt, len(h))
	copy(out, h)
	return out
}

// Do runs sp somewhere on the fleet: route, dispatch, and on transient
// failure back off and fail over to a worker not yet tried (the tried
// set resets once every worker has been burned, so a fleet that is
// merely busy is retried rather than abandoned). Deterministic run
// failures and spec rejections return immediately. jobID keys the
// attempt history and may be "" for fire-and-forget callers.
func (c *Coordinator) Do(ctx context.Context, jobID string, sp spec.Spec) (*slacksim.Results, error) {
	key := sp.Key()
	tried := make(map[string]bool)
	var lastErr error
	// resume carries a migrated run's exported state into the next
	// attempt: the run continues from its checkpoint on the new worker
	// instead of starting over.
	var resume []byte
	// scratch is the healthy-worker list reused across pick attempts.
	var scratch []string
	skipBackoff := false
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		// A caller that already gave up gets its context error back
		// immediately — classified permanent, never a failover retry. This
		// also covers the routing-failure continues below (no transport,
		// worker down), which otherwise reach the next attempt without a
		// dispatch ever having observed ctx.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if attempt > 0 && !skipBackoff {
			wait := c.backoff(attempt - 1)
			var re *client.RetryError
			if errors.As(lastErr, &re) && re.After > wait {
				wait = re.After
			}
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(wait):
			}
		}
		skipBackoff = false

		id, spill, err := c.pickInto(&scratch, key, tried)
		if errors.Is(err, ErrNoWorkers) && len(tried) > 0 {
			// Every healthy worker has been tried; start over rather than
			// give up — the failure may have been transient everywhere.
			tried = make(map[string]bool)
			id, spill, err = c.pickInto(&scratch, key, tried)
		}
		if err != nil {
			lastErr = err
			continue
		}
		tr, ok := c.reg.transport(id)
		if !ok {
			tried[id] = true
			lastErr = fmt.Errorf("%w: %s deregistered", ErrWorkerDown, id)
			continue
		}

		// Tie the dispatch to the worker's health: if the probe loop marks
		// it down mid-run, the context fires and the attempt fails over.
		dctx, cancel := context.WithCancel(ctx)
		release, alive := c.reg.track(id, cancel)
		if !alive {
			cancel()
			tried[id] = true
			lastErr = fmt.Errorf("%w: %s", ErrWorkerDown, id)
			continue
		}
		a := Attempt{Worker: id, Start: time.Now(), Spill: spill, Resumed: len(resume) > 0}
		var res *slacksim.Results
		if len(resume) > 0 {
			res, err = tr.Resume(dctx, resume)
		} else {
			res, err = tr.Run(dctx, sp)
		}
		a.DurationMS = time.Since(a.Start).Milliseconds()
		release()
		cancel()

		if err == nil {
			c.record(jobID, a)
			return res, nil
		}
		var me *MigratedError
		if errors.As(err, &me) {
			// The worker handed the run back at a checkpoint (evacuation).
			// Carry the snapshot to the next attempt and go immediately:
			// the work is intact, nothing to back off from. A pending-job
			// ejection has no snapshot — restart from the spec.
			a.Migrated = true
			c.record(jobID, a)
			resume = me.Snapshot
			tried[id] = true
			skipBackoff = true
			lastErr = err
			continue
		}
		a.Error = err.Error()
		c.record(jobID, a)
		if ctx.Err() != nil {
			// The caller cancelled or timed out: permanent, even though the
			// attempt's error usually wraps context.Canceled — don't
			// reinterpret the caller giving up as a worker fault and burn
			// failover retries on it. (The converse — err wraps a context
			// error while ctx is still live — is the health probe cancelling
			// dctx for a worker that died mid-run, and stays retryable.)
			return nil, ctx.Err()
		}
		if permanent(err) {
			return nil, err
		}
		tried[id] = true
		lastErr = err
	}
	return nil, fmt.Errorf("fleet: job %s failed after %d attempts: %w", jobID, c.cfg.MaxAttempts, lastErr)
}

// Evacuate live-migrates a worker's work off it: the worker is marked
// draining (no new dispatches are routed at it, but health probes
// continue while its jobs export), then told to evacuate — pending jobs
// eject, running jobs stop at their next checkpoint and export their
// state. The coordinator's in-flight dispatches on the worker observe
// *MigratedError and immediately resume the runs on other workers, so
// results are identical to uninterrupted execution. The worker stays
// draining until it re-registers.
func (c *Coordinator) Evacuate(ctx context.Context, workerID string) error {
	if !c.reg.SetDraining(workerID, true) {
		return fmt.Errorf("fleet: no such worker %q", workerID)
	}
	tr, ok := c.reg.transport(workerID)
	if !ok {
		return fmt.Errorf("%w: %s deregistered", ErrWorkerDown, workerID)
	}
	return tr.Evacuate(ctx)
}
