package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Join announces a worker to a fleet coordinator: POST
// coordinatorURL/v1/fleet/workers with the worker's ID and advertised
// base URL. Workers call it after their listener is up, so the first
// probe finds a live /v1/healthz.
func Join(ctx context.Context, coordinatorURL, id, advertiseURL string) error {
	body, err := json.Marshal(joinRequest{ID: id, URL: advertiseURL})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(coordinatorURL, "/")+"/v1/fleet/workers", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doFleet(req, "join")
}

// Leave deregisters a worker from a fleet coordinator: DELETE
// coordinatorURL/v1/fleet/workers/{id}. Workers call it BEFORE draining
// their in-flight jobs, so the coordinator stops routing new work at
// them while the jobs they already accepted still finish and report.
func Leave(ctx context.Context, coordinatorURL, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		strings.TrimRight(coordinatorURL, "/")+"/v1/fleet/workers/"+id, nil)
	if err != nil {
		return err
	}
	return doFleet(req, "leave")
}

func doFleet(req *http.Request, verb string) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return fmt.Errorf("fleet %s: %w", verb, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("fleet %s: %s: %s", verb, resp.Status, strings.TrimSpace(string(blob)))
	}
	return nil
}
