// Command slacksim runs one simulation of the target CMP and prints the
// results.
//
// Examples:
//
//	slacksim -workload fft -scheme s10
//	slacksim -workload barnes -scheme adaptive -target 0.0001 -band 0.05
//	slacksim -workload water -scheme s32 -ckpt 5000 -rollback
//	slacksim -workload lu -scheme cc -parallel
//	slacksim -workload fft -scheme q100 -json | jq .cycles
//	slacksim -synth pattern=zipf,ops=256 -record zipf.trc
//	slacksim -replay zipf.trc -parallel
//	slacksim -workload fft -sample-interval 20000 -sample-every 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"slacksim"
	"slacksim/internal/memtrace"
	"slacksim/internal/prof"
	"slacksim/internal/spec"
	"slacksim/internal/synth"
	"slacksim/internal/workload"
)

func main() {
	var (
		wl       = flag.String("workload", "fft", "benchmark: fft, lu, barnes, water, ocean, radix, falseshare, private")
		scale    = flag.Int("scale", 1, "workload input scale (1 = quick)")
		cores    = flag.Int("cores", 8, "number of target cores")
		scheme   = flag.String("scheme", "cc", "slack scheme: cc, s<N>, su, q<N>, p2p<N>, adaptive")
		target   = flag.Float64("target", 0, "adaptive target violation rate (e.g. 0.0001 for 0.01%)")
		band     = flag.Float64("band", 0, "adaptive violation band (e.g. 0.05)")
		seed     = flag.Int64("seed", 1, "deterministic-host scheduling seed")
		insts    = flag.Uint64("instructions", 0, "stop after N committed instructions (0 = run to completion)")
		ckpt     = flag.Int64("ckpt", 0, "checkpoint interval in cycles (0 = off)")
		rollback = flag.Bool("rollback", false, "speculative slack: roll back on violations")
		mapOnly  = flag.Bool("maponly", false, "select only cache-map violations for control/rollback")
		parallel = flag.Bool("parallel", false, "use the goroutine-parallel host")
		verify   = flag.Bool("verify", true, "check the workload's functional result")
		perCore  = flag.Bool("percore", false, "print per-core statistics")
		traceN   = flag.Int("trace", 0, "keep and print the last N trace events")
		dump     = flag.Bool("dump", false, "disassemble core 0's program and exit")
		synthCfg = flag.String("synth", "", "run the synthetic workload generator with this comma-separated k=v config (seed, pattern, ops, phases, hot_lines, zipf_alpha, read_pct, locks, ring_slots); implies -workload synth")
		record   = flag.String("record", "", "record the run's memory-event trace to this file")
		replay   = flag.String("replay", "", "replay a recorded memory trace from this file; implies -workload trace")
		sampleIv = flag.Uint64("sample-interval", 0, "interval sampling: instructions per interval (0 = off)")
		sampleDE = flag.Int("sample-every", 0, "interval sampling: simulate every Nth interval in detail (0 = default)")
		sampleCf = flag.Float64("sample-conf", 0, "interval sampling: confidence level, one of 0.90, 0.95, 0.99 (0 = default)")
		asJSON   = flag.Bool("json", false, "print the full results as JSON instead of the table")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	if *dump {
		w, err := workload.ByName(*wl, *scale)
		if err != nil {
			log.Fatal(err)
		}
		progs, err := w.Programs(*cores)
		if err != nil {
			log.Fatal(err)
		}
		p := progs[0]
		fmt.Printf("%s: %d instructions\n", p.Name, p.Len())
		for i, in := range p.Insts {
			fmt.Printf("%5d: %s\n", i, in)
		}
		return
	}

	sp := spec.Spec{
		Workload:           *wl,
		Scale:              *scale,
		Cores:              *cores,
		Scheme:             *scheme,
		TargetRate:         *target,
		Band:               *band,
		Seed:               *seed,
		MaxInstructions:    *insts,
		CheckpointInterval: *ckpt,
		Rollback:           *rollback,
		MapViolationsOnly:  *mapOnly,
		Parallel:           *parallel,
		SampleInterval:     *sampleIv,
		SampleDetailEvery:  *sampleDE,
		SampleConfidence:   *sampleCf,
	}
	if *synthCfg != "" {
		c, err := synth.ParseConfig(*synthCfg)
		if err != nil {
			log.Fatal(err)
		}
		sp.Workload = "synth"
		sp.Synth = &c
	}
	if *replay != "" {
		data, err := os.ReadFile(*replay)
		if err != nil {
			log.Fatal(err)
		}
		sp.Workload = "trace"
		sp.Trace = &spec.TraceSpec{Data: data}
	}
	cfg, err := sp.Config()
	if err != nil {
		log.Fatal(err)
	}
	cfg.TraceEvents = *traceN
	var rec *memtrace.Recorder
	if *record != "" {
		rec = memtrace.NewRecorder(cfg.Cores, cfg.Workload)
		cfg.MemRecorder = rec
	}
	sim, err := slacksim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	if rec != nil {
		data, err := rec.Encode()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*record, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "recorded %s: %d events, %d bytes, digest %s\n",
			*record, rec.Trace().TotalEvents(), len(data), memtrace.Digest(data)[:12])
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Print(res.Table())
		if s := res.Sampling; s != nil {
			fmt.Printf("sampled estimate: %.0f cycles ± %.0f (%.0f%% confidence, %d/%d intervals detailed)\n",
				s.EstimatedCycles, s.HalfWidth, s.Confidence*100, s.DetailedIntervals, s.Intervals)
		}
		if *perCore {
			fmt.Println("\nper-core:")
			for i, cs := range res.PerCore {
				fmt.Printf("  core %d: %d cycles, %d insts (CPI %.2f), %d loads, %d stores, %d mispredicts\n",
					i, cs.Cycles, cs.Committed, cs.CPI(), cs.Loads, cs.Stores, cs.Mispredicts)
			}
		}
		if *traceN > 0 {
			fmt.Printf("\ntrace (last %d events):\n%s", *traceN, sim.Trace())
		}
	}
	if *verify {
		if err := sim.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "FUNCTIONAL CHECK FAILED: %v\n", err)
			stopProf() // deferred calls do not survive os.Exit
			os.Exit(1)
		}
		if !*asJSON {
			fmt.Println("functional check: ok")
		}
	}
}
