// Command slacksim runs one simulation of the target CMP and prints the
// results.
//
// Examples:
//
//	slacksim -workload fft -scheme s10
//	slacksim -workload barnes -scheme adaptive -target 0.0001 -band 0.05
//	slacksim -workload water -scheme s32 -ckpt 5000 -rollback
//	slacksim -workload lu -scheme cc -parallel
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"slacksim"
	"slacksim/internal/workload"
)

func parseScheme(s string, target, band float64) (slacksim.Scheme, error) {
	switch {
	case s == "cc":
		return slacksim.Schemes.CC(), nil
	case s == "su" || s == "unbounded":
		return slacksim.Schemes.Unbounded(), nil
	case s == "adaptive":
		cfg := slacksim.Schemes.AdaptiveDefault().Adaptive
		if target > 0 {
			cfg.TargetRate = target
		}
		if band >= 0 {
			cfg.Band = band
		}
		return slacksim.Schemes.Adaptive(cfg), nil
	case strings.HasPrefix(s, "s"):
		b, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return slacksim.Scheme{}, fmt.Errorf("bad bounded scheme %q", s)
		}
		return slacksim.Schemes.Bounded(b), nil
	case strings.HasPrefix(s, "q"):
		q, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return slacksim.Scheme{}, fmt.Errorf("bad quantum scheme %q", s)
		}
		return slacksim.Schemes.Quantum(q), nil
	case strings.HasPrefix(s, "p2p"):
		period, err := strconv.ParseInt(s[3:], 10, 64)
		if err != nil {
			return slacksim.Scheme{}, fmt.Errorf("bad lax-p2p scheme %q", s)
		}
		return slacksim.Schemes.LaxP2P(period, period), nil
	}
	return slacksim.Scheme{}, fmt.Errorf("unknown scheme %q (want cc, s<N>, su, q<N>, p2p<N>, adaptive)", s)
}

func main() {
	var (
		wl       = flag.String("workload", "fft", "benchmark: fft, lu, barnes, water, ocean, radix, falseshare, private")
		scale    = flag.Int("scale", 1, "workload input scale (1 = quick)")
		cores    = flag.Int("cores", 8, "number of target cores")
		scheme   = flag.String("scheme", "cc", "slack scheme: cc, s<N>, su, q<N>, adaptive")
		target   = flag.Float64("target", 0, "adaptive target violation rate (e.g. 0.0001 for 0.01%)")
		band     = flag.Float64("band", -1, "adaptive violation band (e.g. 0.05)")
		seed     = flag.Int64("seed", 1, "deterministic-host scheduling seed")
		insts    = flag.Uint64("instructions", 0, "stop after N committed instructions (0 = run to completion)")
		ckpt     = flag.Int64("ckpt", 0, "checkpoint interval in cycles (0 = off)")
		rollback = flag.Bool("rollback", false, "speculative slack: roll back on violations")
		mapOnly  = flag.Bool("maponly", false, "select only cache-map violations for control/rollback")
		parallel = flag.Bool("parallel", false, "use the goroutine-parallel host")
		verify   = flag.Bool("verify", true, "check the workload's functional result")
		perCore  = flag.Bool("percore", false, "print per-core statistics")
		traceN   = flag.Int("trace", 0, "keep and print the last N trace events")
		dump     = flag.Bool("dump", false, "disassemble core 0's program and exit")
	)
	flag.Parse()

	if *dump {
		w, err := workload.ByName(*wl, *scale)
		if err != nil {
			log.Fatal(err)
		}
		progs, err := w.Programs(*cores)
		if err != nil {
			log.Fatal(err)
		}
		p := progs[0]
		fmt.Printf("%s: %d instructions\n", p.Name, p.Len())
		for i, in := range p.Insts {
			fmt.Printf("%5d: %s\n", i, in)
		}
		return
	}

	sch, err := parseScheme(*scheme, *target, *band)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := slacksim.New(slacksim.Config{
		Workload:           *wl,
		Scale:              *scale,
		Cores:              *cores,
		Scheme:             sch,
		Seed:               *seed,
		MaxInstructions:    *insts,
		CheckpointInterval: *ckpt,
		Rollback:           *rollback,
		MapViolationsOnly:  *mapOnly,
		Parallel:           *parallel,
		TraceEvents:        *traceN,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Table())
	if *perCore {
		fmt.Println("\nper-core:")
		for i, cs := range res.PerCore {
			fmt.Printf("  core %d: %d cycles, %d insts (CPI %.2f), %d loads, %d stores, %d mispredicts\n",
				i, cs.Cycles, cs.Committed, cs.CPI(), cs.Loads, cs.Stores, cs.Mispredicts)
		}
	}
	if *traceN > 0 {
		fmt.Printf("\ntrace (last %d events):\n%s", *traceN, sim.Trace())
	}
	if *verify {
		if err := sim.Verify(); err != nil {
			fmt.Fprintf(os.Stderr, "FUNCTIONAL CHECK FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("functional check: ok")
	}
}
