package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/spec"
)

func build(t *testing.T, dir, name, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func waitHealthy(t *testing.T, cmd *exec.Cmd, addr string) {
	t.Helper()
	c := client.New("http://" + addr)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatalf("daemon at %s never became healthy", addr)
}

func start(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func canon(t *testing.T, r *slacksim.Results) []byte {
	t.Helper()
	c := *r
	c.WallClock = 0
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestKillDashNineCoordinatorRecoversSweep: the fleet coordinator is
// SIGKILLed mid-sweep while its worker survives; a restart on the same
// data directory serves completed cells from the persistent store and
// re-dispatches every journaled unfinished job, so the sweep completes
// with byte-identical results and no lost cells.
func TestKillDashNineCoordinatorRecoversSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and simulates seconds of target time")
	}
	dir := t.TempDir()
	fleetBin := build(t, dir, "slacksimfleet", ".")
	workerBin := build(t, dir, "slacksimd", "slacksim/cmd/slacksimd")
	data := filepath.Join(dir, "data")
	workerAddr, fleetAddr := freePort(t), freePort(t)
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	worker := start(t, workerBin, "-addr", workerAddr, "-workers", "2", "-queue", "32")
	defer func() {
		_ = worker.Process.Signal(syscall.SIGTERM)
		_, _ = worker.Process.Wait()
	}()
	waitHealthy(t, worker, workerAddr)

	fleetArgs := []string{"-addr", fleetAddr, "-workers", "http://" + workerAddr, "-data", data}
	coord := start(t, fleetBin, fleetArgs...)
	waitHealthy(t, coord, fleetAddr)
	c := client.New("http://" + fleetAddr)

	quick := spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: 1}
	slow := func(seed int64) spec.Spec {
		return spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: seed, Scale: 32, CheckpointInterval: 256}
	}

	done1, err := c.SubmitWait(ctx, quick, 5*time.Millisecond)
	if err != nil || done1.State != "done" {
		t.Fatalf("quick cell: %+v, %v", done1, err)
	}

	var unfinished []*client.Job
	for seed := int64(2); seed <= 4; seed++ {
		j, err := c.Submit(ctx, slow(seed))
		if err != nil {
			t.Fatalf("submit slow %d: %v", seed, err)
		}
		unfinished = append(unfinished, j)
	}

	time.Sleep(300 * time.Millisecond)
	if err := coord.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = coord.Wait()

	coord2 := start(t, fleetBin, fleetArgs...)
	defer func() {
		_ = coord2.Process.Signal(syscall.SIGTERM)
		_, _ = coord2.Process.Wait()
	}()
	waitHealthy(t, coord2, fleetAddr)

	// The finished cell survived the coordinator crash in its store.
	again, err := c.Submit(ctx, quick)
	if err != nil {
		t.Fatalf("resubmit after restart: %v", err)
	}
	if !again.Cached || again.Result == nil {
		t.Fatalf("restarted coordinator re-dispatched a stored result: %+v", again)
	}
	if !bytes.Equal(canon(t, again.Result), canon(t, done1.Result)) {
		t.Fatal("store-served result differs from the pre-crash result")
	}

	// The journaled unfinished cells recover under their original IDs and
	// complete across the surviving worker, byte-identical to local runs.
	for i, j := range unfinished {
		fin, err := c.Wait(ctx, j.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("recovered cell %s: %v", j.ID, err)
		}
		if fin.State != "done" || fin.Result == nil {
			t.Fatalf("recovered cell %s: %s (%s)", j.ID, fin.State, fin.Error)
		}
		sp := slow(int64(i + 2))
		cfg, err := sp.Normalize().Config()
		if err != nil {
			t.Fatal(err)
		}
		sim, err := slacksim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon(t, fin.Result), canon(t, &want)) {
			t.Fatalf("recovered cell %s result differs from uninterrupted run", j.ID)
		}
	}

	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := st["recovered"].(float64); rec < 3 {
		t.Fatalf("statsz recovered = %v, want >= 3: %v", rec, st)
	}
}
