// Command slacksimfleet is the fleet coordinator: it speaks the exact
// /v1/jobs API of a single slacksimd — the Go client, sweep -server,
// and curl all work unchanged — but executes every job on a registry of
// slacksimd workers, routed by rendezvous hashing on the spec digest
// (cache affinity) with load-aware spill and automatic failover.
//
//	slacksimfleet -addr :9090 -workers http://node1:8080,http://node2:8080
//
// Workers may also join and leave at runtime:
//
//	curl -s localhost:9090/v1/fleet/workers -d '{"id":"node3","url":"http://node3:8080"}'
//	curl -s localhost:9090/v1/fleet/workers          # membership + health + load
//	sweep -workloads fft -bounds 8,32 -fleet http://localhost:9090
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"slacksim/internal/durable"
	"slacksim/internal/fleet"
	"slacksim/internal/service/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":9090", "listen address")
		workers  = flag.String("workers", "", "comma-separated worker base URLs to register at startup")
		queue    = flag.Int("queue", 256, "pending-job queue depth (admission bound)")
		dispatch = flag.Int("dispatch", 64, "max concurrent dispatches to workers")
		cache    = flag.Int("cache", 512, "fleet-level result cache entries")
		probe    = flag.Duration("probe", 2*time.Second, "worker health-probe interval")
		attempts = flag.Int("attempts", 4, "max dispatch attempts per job")
		spill    = flag.Float64("spill", 2.0, "spill when the affinity worker's pending work reaches this multiple of its capacity")
		drain    = flag.Duration("drain-timeout", 60*time.Second, "max time to finish accepted jobs on shutdown")
		dataDir  = flag.String("data", "", "durable state directory (persistent fleet result store + crash-recoverable job journal); empty = in-memory only")
	)
	flag.Parse()

	sc := server.Config{
		QueueDepth: *queue,
		Workers:    *dispatch,
		CacheSize:  *cache,
		// Dispatches wait on remote runs, not local stalls; the watchdog
		// budget lives on the workers.
		StallTimeout: -1,
	}

	var (
		store   *durable.Store
		journal *durable.Journal
		pending []durable.PendingJob
	)
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("data dir: %v", err)
		}
		var err error
		store, err = durable.OpenStore(filepath.Join(*dataDir, "store"), durable.StoreOptions{})
		if err != nil {
			log.Fatalf("open result store: %v", err)
		}
		journal, pending, err = durable.OpenJournal(filepath.Join(*dataDir, "journal.wal"))
		if err != nil {
			log.Fatalf("open job journal: %v", err)
		}
		sc.Cache = durable.NewResultCache(store, *cache)
		sc.Journal = journal
		st := store.Stats()
		log.Printf("durable state at %s (%d stored results, %d journaled jobs to recover)",
			*dataDir, st.Entries, len(pending))
	}

	f := fleet.NewFacade(fleet.FacadeConfig{
		Server:      sc,
		Coordinator: fleet.CoordinatorConfig{MaxAttempts: *attempts, SpillFactor: *spill},
		Registry:    fleet.RegistryConfig{ProbeInterval: *probe},
	})
	if len(pending) > 0 {
		log.Printf("recovered %d unfinished jobs from the journal", f.Server().Recover(pending))
	}
	n := 0
	for _, u := range strings.Split(*workers, ",") {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		n++
		f.Registry().Add(fmt.Sprintf("w%d", n), u, fleet.DialWorker(u))
		log.Printf("registered worker w%d at %s", n, u)
	}
	// Probe immediately so the first jobs see real health and load instead
	// of waiting out a full probe interval.
	f.Registry().ProbeOnce(context.Background())

	hs := &http.Server{Addr: *addr, Handler: f.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("slacksimfleet listening on %s (%d workers registered)", *addr, n)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutdown: draining (timeout %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := f.Drain(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("store close: %v", err)
		}
	}
	log.Printf("slacksimfleet stopped")
}
