package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"slacksim/internal/lint"
)

// buildTool compiles the slacksimlint binary once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "slacksimlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func brokenMod(t *testing.T) string {
	return filepath.Join(repoRoot(t), "internal", "lint", "testdata", "brokenmod")
}

// TestStandaloneCleanOnRepo is the CI gate in miniature: the binary must
// exit 0 over the real repository.
func TestStandaloneCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	bin := buildTool(t)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, repoRoot(t))
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("slacksimlint on the repo should exit 0, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
}

// TestStandaloneFlagsBrokenMod pins the PR 1 regression: the
// reconstructed unlocked-Broadcast module must fail with a condlock
// finding and exit status 1.
func TestStandaloneFlagsBrokenMod(t *testing.T) {
	bin := buildTool(t)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, brokenMod(t))
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on brokenmod, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("condlock")) ||
		!bytes.Contains(stdout.Bytes(), []byte("lost-wakeup")) {
		t.Fatalf("findings should name condlock and the lost-wakeup, got:\n%s", stdout.String())
	}
}

// TestVetToolFlagsBrokenMod drives the binary through the go command's
// vet protocol (-vettool): go vet must fail on the broken module and
// surface the condlock diagnostic.
func TestVetToolFlagsBrokenMod(t *testing.T) {
	bin := buildTool(t)
	var out bytes.Buffer
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = brokenMod(t)
	cmd.Stdout, cmd.Stderr = &out, &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool should fail on brokenmod, got success\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("lost-wakeup")) {
		t.Fatalf("vet output should carry the condlock diagnostic, got:\n%s", out.String())
	}
}

// TestAllowInventoryMode exercises -allows on a fixture module with one
// used waiver, one stale waiver, and one reason-less waiver: the stale
// and reason-less ones are tagged and fail the audit.
func TestAllowInventoryMode(t *testing.T) {
	bin := buildTool(t)
	dir := filepath.Join(repoRoot(t), "internal", "lint", "testdata", "allowmod")
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-allows", dir)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("-allows should exit 1 on allowmod, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"a used, justified waiver", // the clean one is listed, untagged
		"[UNUSED]",
		"[NO REASON]",
	} {
		if !bytes.Contains(stdout.Bytes(), []byte(want)) {
			t.Errorf("-allows output should contain %q, got:\n%s", want, out)
		}
	}
	if bytes.Contains(stdout.Bytes(), []byte("a used, justified waiver  [")) {
		t.Errorf("the used waiver must not be tagged, got:\n%s", out)
	}
}

// TestAllowInventoryCleanOnRepo is the waiver-audit CI gate in
// miniature: every //lint:allow in the repository must still suppress a
// finding and carry a reason.
func TestAllowInventoryCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	bin := buildTool(t)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, "-allows", repoRoot(t))
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("slacksimlint -allows on the repo should exit 0, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
}

// TestListMatchesSuite keeps the command's -list surface in sync with
// the internal/lint registration: every analyzer in the suite must be
// listed, and nothing else.
func TestListMatchesSuite(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-list").Output()
	if err != nil {
		t.Fatalf("-list: %v", err)
	}
	listed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		fields := strings.Fields(line)
		if len(fields) > 0 {
			listed[fields[0]] = true
		}
	}
	suite := lint.Analyzers()
	for _, a := range suite {
		if !listed[a.Name] {
			t.Errorf("-list omits analyzer %s", a.Name)
		}
	}
	if len(listed) != len(suite) {
		t.Errorf("-list prints %d analyzers, suite has %d: %v", len(listed), len(suite), listed)
	}
}

// TestReadmeNamesSuite keeps the README's Lint section in sync with the
// registered suite: a new analyzer lands with its documentation.
func TestReadmeNamesSuite(t *testing.T) {
	readme, err := os.ReadFile(filepath.Join(repoRoot(t), "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range lint.Analyzers() {
		if !bytes.Contains(readme, []byte(a.Name)) {
			t.Errorf("README.md does not mention analyzer %s", a.Name)
		}
	}
}

// TestVersionAndFlagsProtocol checks the two go-command handshake calls.
func TestVersionAndFlagsProtocol(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !bytes.HasPrefix(out, []byte("slacksimlint version ")) {
		t.Fatalf("-V=full output %q must start with %q for the go command's tool-ID parser",
			out, "slacksimlint version ")
	}
	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if want := []byte("[]\n"); !bytes.Equal(out, want) {
		t.Fatalf("-flags printed %q, want %q", out, want)
	}
}
