package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildTool compiles the slacksimlint binary once per test run.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "slacksimlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func brokenMod(t *testing.T) string {
	return filepath.Join(repoRoot(t), "internal", "lint", "testdata", "brokenmod")
}

// TestStandaloneCleanOnRepo is the CI gate in miniature: the binary must
// exit 0 over the real repository.
func TestStandaloneCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short")
	}
	bin := buildTool(t)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, repoRoot(t))
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("slacksimlint on the repo should exit 0, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
}

// TestStandaloneFlagsBrokenMod pins the PR 1 regression: the
// reconstructed unlocked-Broadcast module must fail with a condlock
// finding and exit status 1.
func TestStandaloneFlagsBrokenMod(t *testing.T) {
	bin := buildTool(t)
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, brokenMod(t))
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on brokenmod, got %v\nstdout:\n%s\nstderr:\n%s",
			err, stdout.String(), stderr.String())
	}
	if !bytes.Contains(stdout.Bytes(), []byte("condlock")) ||
		!bytes.Contains(stdout.Bytes(), []byte("lost-wakeup")) {
		t.Fatalf("findings should name condlock and the lost-wakeup, got:\n%s", stdout.String())
	}
}

// TestVetToolFlagsBrokenMod drives the binary through the go command's
// vet protocol (-vettool): go vet must fail on the broken module and
// surface the condlock diagnostic.
func TestVetToolFlagsBrokenMod(t *testing.T) {
	bin := buildTool(t)
	var out bytes.Buffer
	cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
	cmd.Dir = brokenMod(t)
	cmd.Stdout, cmd.Stderr = &out, &out
	err := cmd.Run()
	if err == nil {
		t.Fatalf("go vet -vettool should fail on brokenmod, got success\n%s", out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("lost-wakeup")) {
		t.Fatalf("vet output should carry the condlock diagnostic, got:\n%s", out.String())
	}
}

// TestVersionAndFlagsProtocol checks the two go-command handshake calls.
func TestVersionAndFlagsProtocol(t *testing.T) {
	bin := buildTool(t)
	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	if !bytes.HasPrefix(out, []byte("slacksimlint version ")) {
		t.Fatalf("-V=full output %q must start with %q for the go command's tool-ID parser",
			out, "slacksimlint version ")
	}
	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if want := []byte("[]\n"); !bytes.Equal(out, want) {
		t.Fatalf("-flags printed %q, want %q", out, want)
	}
}
