// Command slacksimlint runs the internal/lint analyzer suite over the
// repository. It works in two modes:
//
// Standalone (the default): load, type-check, and lint every package of
// the module rooted at the given directory, entirely offline:
//
//	slacksimlint [-only condlock,determinism] [dir|./...]
//
// Exit status: 0 clean, 1 findings, 2 operational error.
//
// Inventory (-allows): run the full suite, then list every //lint:allow
// directive with its position, analyzers, and reason. Directives that
// suppressed nothing are tagged UNUSED and directives without a reason
// NO REASON; either makes the exit status 1, so the waiver inventory is
// a CI gate against stale or unjustified escapes.
//
// -list prints the analyzer suite (name and first doc sentence).
//
// Vet tool: when invoked by the go command as a vet backend
// (`go vet -vettool=$(pwd)/bin/slacksimlint ./...`), it speaks the
// unitchecker protocol — -V=full for the tool ID, -flags for the
// (empty) analyzer flag set, and one .cfg file per package describing
// files and export data. Diagnostics go to stderr and exit status 2,
// which go vet surfaces as a failure.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"slacksim/internal/lint"
)

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) > 0 && strings.HasSuffix(args[len(args)-1], ".cfg") {
		os.Exit(vetMode(args[len(args)-1]))
	}
	os.Exit(standalone(args))
}

// printVersion emits the tool ID line the go command parses
// ("<name> version <ver> ..."): the build ID is a content hash of the
// executable so vet's result cache invalidates when the tool changes.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("slacksimlint version devel buildID=%s\n", id)
}

func standalone(args []string) int {
	fs := flag.NewFlagSet("slacksimlint", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated analyzer subset (default: all)")
	allows := fs.Bool("allows", false, "inventory //lint:allow directives instead of printing findings")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: slacksimlint [-only a,b] [-allows] [-list] [module-dir]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.Analyzers() {
			doc := a.Doc
			if i := strings.Index(doc, "."); i >= 0 {
				doc = doc[:i+1]
			}
			fmt.Printf("%-14s %s\n", a.Name, strings.Join(strings.Fields(doc), " "))
		}
		return 0
	}
	dir := "."
	if fs.NArg() > 0 {
		dir = fs.Arg(0)
	}
	// `slacksimlint ./...` means the module rooted in the current dir.
	dir = strings.TrimSuffix(dir, "...")
	if dir == "" || dir == "./" {
		dir = "."
	}

	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slacksimlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slacksimlint:", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "slacksimlint:", err)
		return 2
	}
	var total int
	for _, pkg := range pkgs {
		findings, err := pkg.Lint(analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "slacksimlint:", err)
			return 2
		}
		for _, f := range findings {
			if *allows {
				continue // inventory mode runs the suite only to observe usage
			}
			total++
			fmt.Println(f)
		}
	}
	if *allows {
		return printAllowInventory(pkgs)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "slacksimlint: %d finding(s)\n", total)
		return 1
	}
	return 0
}

// printAllowInventory lists every //lint:allow directive with its usage,
// observed from the suite run that just completed. Stale (UNUSED) or
// unjustified (NO REASON) directives fail the audit.
func printAllowInventory(pkgs []*lint.Package) int {
	if len(pkgs) == 0 {
		return 0
	}
	bad := 0
	for _, info := range pkgs[0].Program().AllowInventory() {
		var tags []string
		if !info.Used {
			tags = append(tags, "UNUSED")
		}
		if info.Reason == "" {
			tags = append(tags, "NO REASON")
		}
		tag := ""
		if len(tags) > 0 {
			bad++
			tag = "  [" + strings.Join(tags, ", ") + "]"
		}
		fmt.Printf("%s:%d: %s -- %s%s\n",
			info.Position.Filename, info.Position.Line,
			strings.Join(info.Analyzers, ","), info.Reason, tag)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "slacksimlint: %d stale or unjustified //lint:allow directive(s)\n", bad)
		return 1
	}
	return 0
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	var names []string
	for _, n := range strings.Split(only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return lint.ByName(names)
}

// vetConfig mirrors the JSON the go command writes for each vetted
// package (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredGoFiles            []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMode(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "slacksimlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "slacksimlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command expects a facts file regardless of outcome; this
	// suite computes no cross-package facts, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "slacksimlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "slacksimlint:", err)
			return 1
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export data for every dependency is listed in PackageFile; the
	// importer reads it instead of source, so vet mode needs no network,
	// module cache, or GOROOT source.
	exportLookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compImporter := importer.ForCompiler(fset, compiler, exportLookup)
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compImporter.Import(importPath)
	})

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tconf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Sizes:       types.SizesFor(compiler, runtime.GOARCH),
	}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "slacksimlint:", err)
		return 1
	}

	findings, err := lint.RunPackage(fset, files, pkg, info, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "slacksimlint:", err)
		return 1
	}
	if len(findings) == 0 {
		return 0
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	return 2
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
