// Command experiments regenerates the paper's evaluation: Figures 3-4 and
// Tables 2-5, plus the ablation studies. Output is the text rendering used
// in EXPERIMENTS.md.
//
//	experiments                  # everything at the default quick scale
//	experiments -only fig3       # one experiment
//	experiments -scale 2 -seed 7 # bigger inputs, different schedule
//	experiments -par 1           # serial runs (e.g. for clean wall-clocks)
//	experiments -fleet http://localhost:9090   # fan cells out across a fleet
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"slacksim/client"
	"slacksim/internal/experiments"
	"slacksim/internal/fleet"
	"slacksim/internal/prof"
	"slacksim/internal/sampling"
)

func main() {
	var (
		scale    = flag.Int("scale", 1, "workload input scale")
		cores    = flag.Int("cores", 8, "target cores")
		seed     = flag.Int64("seed", 1, "scheduling seed")
		par      = flag.Int("par", 0, "experiment workers (0 = one per host thread, 1 = serial)")
		only     = flag.String("only", "", "run one experiment: fig3, fig4, table2, table34, table5, ablations, scaling, sampling")
		fleetURL = flag.String("fleet", "", "execute every grid cell on a slacksimfleet coordinator (or slacksimd) at this base URL")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		log.Fatal(err)
	}
	defer stopProf()

	cfg := experiments.Default()
	cfg.Scale = *scale
	cfg.Cores = *cores
	cfg.Seed = *seed
	cfg.Parallelism = *par
	if *fleetURL != "" {
		c := client.New(*fleetURL)
		if err := c.Healthz(context.Background()); err != nil {
			log.Fatalf("fleet %s not healthy: %v", *fleetURL, err)
		}
		cfg.Exec = fleet.NewRemoteDriver(context.Background(), c).Exec
	}

	want := func(name string) bool { return *only == "" || *only == name }
	start := time.Now()

	if want("fig3") {
		series, err := experiments.Fig3(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatFig3(series))
	}
	if want("fig4") {
		for _, wl := range cfg.Workloads {
			r, err := experiments.Fig4(cfg, wl)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Println(experiments.FormatFig4(r))
		}
	}
	if want("table2") {
		rows, err := experiments.Table2(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatTable2(cfg, rows))
	}
	if want("table34") {
		rows, err := experiments.Table3And4(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatTable3And4(cfg, rows))
	}
	if want("table5") {
		rows, err := experiments.Table5(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatTable5(rows))
	}
	if want("ablations") {
		rows, err := experiments.Ablations(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatAblations(rows))
	}
	if want("scaling") {
		rows, err := experiments.Scaling(cfg, "water", []int{2, 4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatScaling("water", rows))
	}
	if want("sampling") {
		plan := sampling.Plan{IntervalInsts: 2000, DetailEvery: 4, Confidence: 0.95}
		rows, err := experiments.SamplingStudy(cfg, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(experiments.FormatSampling(plan, rows))
	}
	fmt.Println(strings.Repeat("-", 60))
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}
