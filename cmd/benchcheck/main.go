// Command benchcheck compares a freshly measured benchmark JSON (the
// output of scripts/bench.sh) against the committed BENCH_*.json
// baseline and fails on erosion: ns/op or allocs/op worse than the
// baseline by more than the tolerance factor. CI's bench-smoke job runs
// it so a PR cannot silently regress the host-performance work the
// baselines pin down.
//
// Allocation counts are deterministic, so their tolerance is tight;
// wall-clock ns/op on shared CI runners is noisy, so its tolerance is
// loose by default and meant to catch structural regressions (a lock
// back on the hot path), not scheduling jitter.
//
// A baseline entry may additionally carry "max_allocs": an ABSOLUTE
// allocs/op ceiling enforced on the current measurement regardless of
// what the baseline itself measured. Ratio tolerances catch erosion
// relative to the last run; the ceiling pins an invariant ("the
// steady-state loop stays allocation-free") that must hold even across
// a chain of small individually-tolerated regressions.
//
//	benchcheck -current /tmp/now.json                 # baseline auto-picked
//	benchcheck -baseline BENCH_PR3.json -current /tmp/now.json
//	benchcheck -current /tmp/now.json -ns-tol 2.0 -allocs-tol 1.05
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

type benchFile struct {
	Benchtime string  `json:"benchtime"`
	Results   []entry `json:"results"`
}

type entry struct {
	Name        string   `json:"name"`
	Iters       int64    `json:"iters"`
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
	// MaxAllocs, when set in the baseline, is a hard allocs/op ceiling
	// for the current measurement (absolute, not a ratio).
	MaxAllocs *float64 `json:"max_allocs,omitempty"`
}

func load(path string) (map[string]entry, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]entry, len(f.Results))
	for _, e := range f.Results {
		m[e.Name] = e
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results", path)
	}
	return m, nil
}

// latestBaseline picks the lexically last BENCH_*.json in dir — the
// newest PR's baseline, given the BENCH_PR<n>.json naming convention.
func latestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		return "", fmt.Errorf("no BENCH_*.json baseline found in %s", dir)
	}
	sort.Strings(matches)
	return matches[len(matches)-1], nil
}

func main() {
	baseline := flag.String("baseline", "", "baseline JSON (default: lexically latest BENCH_*.json in -dir)")
	current := flag.String("current", "", "freshly measured JSON to check (required)")
	dir := flag.String("dir", ".", "directory searched for the default baseline")
	nsTol := flag.Float64("ns-tol", 1.5, "max allowed current/baseline ratio for ns/op")
	allocsTol := flag.Float64("allocs-tol", 1.10, "max allowed current/baseline ratio for allocs/op")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchcheck: -current is required")
		flag.Usage()
		os.Exit(2)
	}
	if *baseline == "" {
		b, err := latestBaseline(*dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		*baseline = b
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
		os.Exit(2)
	}

	report, failures := compare(base, cur, *nsTol, *allocsTol)
	fmt.Printf("benchcheck: %s vs baseline %s (ns-tol %.2fx, allocs-tol %.2fx)\n", *current, *baseline, *nsTol, *allocsTol)
	for _, line := range report {
		fmt.Println(line)
	}
	if len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: %d regression(s):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "  "+f)
		}
		os.Exit(1)
	}
	fmt.Println("benchcheck: OK")
}

// compare returns a per-benchmark report and the list of erosion
// failures. Benchmarks present on only one side are reported but never
// fatal: renames and new benchmarks must not break the gate.
func compare(base, cur map[string]entry, nsTol, allocsTol float64) (report, failures []string) {
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := cur[name]
		b, ok := base[name]
		if !ok {
			report = append(report, fmt.Sprintf("  %-60s new (no baseline)", name))
			continue
		}
		line := fmt.Sprintf("  %-60s", name)
		if r, bad := ratio(b.NsPerOp, c.NsPerOp, nsTol); r != "" {
			line += " ns/op " + r
			if bad {
				failures = append(failures, fmt.Sprintf("%s ns/op %s exceeds %.2fx tolerance", name, r, nsTol))
			}
		}
		if r, bad := ratio(b.AllocsPerOp, c.AllocsPerOp, allocsTol); r != "" {
			line += " allocs/op " + r
			if bad {
				failures = append(failures, fmt.Sprintf("%s allocs/op %s exceeds %.2fx tolerance", name, r, allocsTol))
			}
		}
		if b.MaxAllocs != nil && c.AllocsPerOp != nil {
			line += fmt.Sprintf(" ceiling %.0f", *b.MaxAllocs)
			if *c.AllocsPerOp > *b.MaxAllocs {
				failures = append(failures, fmt.Sprintf("%s allocs/op %.0f exceeds the hard ceiling of %.0f", name, *c.AllocsPerOp, *b.MaxAllocs))
			}
		}
		report = append(report, line)
	}
	for name := range base {
		if _, ok := cur[name]; !ok {
			report = append(report, fmt.Sprintf("  %-60s dropped (baseline only)", name))
		}
	}
	sort.Strings(report)
	return report, failures
}

// ratio formats current/baseline and reports whether it exceeds tol.
// A missing metric on either side, or a zero baseline (nothing to
// erode), yields no verdict.
func ratio(b, c *float64, tol float64) (string, bool) {
	if b == nil || c == nil || *b <= 0 {
		return "", false
	}
	r := *c / *b
	return fmt.Sprintf("%.3fx", r), r > tol
}
