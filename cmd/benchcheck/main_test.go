package main

import (
	"strings"
	"testing"
)

func f(v float64) *float64 { return &v }

func TestCompareFlagsErosion(t *testing.T) {
	base := map[string]entry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: f(1000), AllocsPerOp: f(100)},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: f(1000), AllocsPerOp: f(100)},
		"BenchmarkC": {Name: "BenchmarkC", NsPerOp: f(1000), AllocsPerOp: f(100)},
	}
	cur := map[string]entry{
		// Inside both tolerances: faster and fewer allocs.
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: f(800), AllocsPerOp: f(90)},
		// ns/op erosion beyond 1.5x.
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: f(1600), AllocsPerOp: f(100)},
		// allocs/op erosion beyond 1.10x, ns/op fine.
		"BenchmarkC": {Name: "BenchmarkC", NsPerOp: f(1100), AllocsPerOp: f(120)},
	}
	_, failures := compare(base, cur, 1.5, 1.10)
	if len(failures) != 2 {
		t.Fatalf("failures = %v, want 2 (B ns, C allocs)", failures)
	}
	joined := strings.Join(failures, "\n")
	if !strings.Contains(joined, "BenchmarkB ns/op") || !strings.Contains(joined, "BenchmarkC allocs/op") {
		t.Fatalf("wrong failures: %v", failures)
	}
}

func TestCompareNewAndDroppedAreNotFatal(t *testing.T) {
	base := map[string]entry{
		"BenchmarkOld": {Name: "BenchmarkOld", NsPerOp: f(1000), AllocsPerOp: f(10)},
	}
	cur := map[string]entry{
		"BenchmarkNew": {Name: "BenchmarkNew", NsPerOp: f(9999), AllocsPerOp: f(9999)},
	}
	report, failures := compare(base, cur, 1.5, 1.10)
	if len(failures) != 0 {
		t.Fatalf("rename/new benchmarks must not fail the gate: %v", failures)
	}
	joined := strings.Join(report, "\n")
	if !strings.Contains(joined, "new (no baseline)") || !strings.Contains(joined, "dropped (baseline only)") {
		t.Fatalf("report missing new/dropped notes:\n%s", joined)
	}
}

func TestCompareEnforcesHardAllocCeiling(t *testing.T) {
	base := map[string]entry{
		// Baseline measured 400 allocs with a 500 ceiling: a current run at
		// 430 passes the 1.10x ratio but a run at 600 must trip the ceiling
		// even if the ratio were tolerated.
		"BenchmarkHot":  {Name: "BenchmarkHot", NsPerOp: f(1000), AllocsPerOp: f(400), MaxAllocs: f(500)},
		"BenchmarkCold": {Name: "BenchmarkCold", NsPerOp: f(1000), AllocsPerOp: f(400)},
	}
	cur := map[string]entry{
		"BenchmarkHot":  {Name: "BenchmarkHot", NsPerOp: f(1000), AllocsPerOp: f(430)},
		"BenchmarkCold": {Name: "BenchmarkCold", NsPerOp: f(1000), AllocsPerOp: f(430)},
	}
	if report, failures := compare(base, cur, 1.5, 1.10); len(failures) != 0 {
		t.Fatalf("within-ceiling run failed: %v", failures)
	} else if !strings.Contains(strings.Join(report, "\n"), "ceiling 500") {
		t.Fatalf("report does not show the ceiling:\n%s", strings.Join(report, "\n"))
	}

	over := map[string]entry{
		"BenchmarkHot":  {Name: "BenchmarkHot", NsPerOp: f(1000), AllocsPerOp: f(600)},
		"BenchmarkCold": {Name: "BenchmarkCold", NsPerOp: f(1000), AllocsPerOp: f(600)},
	}
	// Huge allocs tolerance: only the absolute ceiling may fire, and only
	// for the benchmark that declares one.
	_, failures := compare(base, over, 1.5, 100)
	if len(failures) != 1 || !strings.Contains(failures[0], "BenchmarkHot allocs/op 600 exceeds the hard ceiling of 500") {
		t.Fatalf("failures = %v, want exactly the BenchmarkHot ceiling breach", failures)
	}
}

func TestCompareMissingMetricsSkipped(t *testing.T) {
	base := map[string]entry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: f(1000)}, // no allocs in baseline
		"BenchmarkZ": {Name: "BenchmarkZ", NsPerOp: f(0), AllocsPerOp: f(0)},
	}
	cur := map[string]entry{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: f(1000), AllocsPerOp: f(50)},
		"BenchmarkZ": {Name: "BenchmarkZ", NsPerOp: f(5), AllocsPerOp: f(5)},
	}
	// A zero or absent baseline metric yields no verdict — never a panic
	// or a divide-by-zero "regression".
	if _, failures := compare(base, cur, 1.5, 1.10); len(failures) != 0 {
		t.Fatalf("failures = %v, want none", failures)
	}
}
