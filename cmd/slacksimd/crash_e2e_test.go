package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/spec"
)

// buildDaemon compiles this command into dir and returns the binary path.
func buildDaemon(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "slacksimd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// freePort grabs an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches the built binary and waits for /v1/healthz.
func startDaemon(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-workers", "2", "-queue", "32", "-data", dataDir)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := client.New("http://" + addr)
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		err := c.Healthz(ctx)
		cancel()
		if err == nil {
			return cmd
		}
		time.Sleep(20 * time.Millisecond)
	}
	_ = cmd.Process.Kill()
	t.Fatal("daemon never became healthy")
	return nil
}

func canon(t *testing.T, r *slacksim.Results) []byte {
	t.Helper()
	c := *r
	c.WallClock = 0
	blob, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestKillDashNineRecoversJobsAndResults is the durable-state acceptance
// gate at the process level: a slacksimd is SIGKILLed with completed,
// running, and pending jobs on its books; a restart on the same data
// directory serves the completed results from the persistent store
// without re-simulation and re-runs every unfinished job to completion,
// with results byte-identical to uninterrupted runs.
func TestKillDashNineRecoversJobsAndResults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and simulates seconds of target time")
	}
	dir := t.TempDir()
	bin := buildDaemon(t, dir)
	data := filepath.Join(dir, "data")
	addr := freePort(t)
	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()

	quick := spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: 1}
	slow := func(seed int64) spec.Spec {
		return spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: seed, Scale: 32, CheckpointInterval: 256}
	}

	daemon := startDaemon(t, bin, addr, data)
	c := client.New("http://" + addr)

	// One job runs to completion: its result must land in the store.
	done1, err := c.SubmitWait(ctx, quick, 5*time.Millisecond)
	if err != nil || done1.State != "done" {
		t.Fatalf("quick job: %+v, %v", done1, err)
	}

	// Three slow jobs: two occupy the worker pool, one stays pending.
	var unfinished []*client.Job
	for seed := int64(2); seed <= 4; seed++ {
		j, err := c.Submit(ctx, slow(seed))
		if err != nil {
			t.Fatalf("submit slow %d: %v", seed, err)
		}
		unfinished = append(unfinished, j)
	}

	// Let the fsync batching window flush the completed result and the
	// running jobs get going, then kill the process hard.
	time.Sleep(300 * time.Millisecond)
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_ = daemon.Wait()

	// Restart on the same data directory.
	daemon2 := startDaemon(t, bin, addr, data)
	defer func() {
		_ = daemon2.Process.Signal(syscall.SIGTERM)
		_, _ = daemon2.Process.Wait()
	}()

	// The completed result survived: an identical submission is served
	// from the store, byte-identical, with no re-simulation.
	again, err := c.Submit(ctx, quick)
	if err != nil {
		t.Fatalf("resubmit after restart: %v", err)
	}
	if !again.Cached || again.Result == nil {
		t.Fatalf("restarted daemon re-simulated a stored result: %+v", again)
	}
	if !bytes.Equal(canon(t, again.Result), canon(t, done1.Result)) {
		t.Fatal("store-served result differs from the pre-crash result")
	}

	// Every unfinished job was journaled and recovers under its original
	// ID, completing with results identical to uninterrupted local runs.
	for i, j := range unfinished {
		fin, err := c.Wait(ctx, j.ID, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("recovered job %s: %v", j.ID, err)
		}
		if fin.State != "done" || fin.Result == nil {
			t.Fatalf("recovered job %s: %s (%s)", j.ID, fin.State, fin.Error)
		}
		sp := slow(int64(i + 2))
		cfg, err := sp.Normalize().Config()
		if err != nil {
			t.Fatal(err)
		}
		sim, err := slacksim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(canon(t, fin.Result), canon(t, &want)) {
			t.Fatalf("recovered job %s result differs from uninterrupted run", j.ID)
		}
	}

	// The recovery counter proves the journal replay did the re-enqueue.
	st, err := c.Statsz(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := st["recovered"].(float64)
	if rec < 3 {
		t.Fatalf("statsz recovered = %v, want >= 3 (journal replay missed jobs): %v", rec, st)
	}
	// The store gauge confirms the persistent tier is live and populated.
	store, _ := st["store"].(map[string]any)
	if store == nil || store["entries"].(float64) < 1 {
		t.Fatalf("statsz store = %v, want a populated persistent store", st["store"])
	}
}
