// Command slacksimd serves slack simulations over HTTP: a bounded job
// queue with 429 backpressure, a content-addressed result cache, SSE
// progress streaming, and graceful drain on SIGTERM (accepted jobs run
// to completion before the process exits).
//
//	slacksimd -addr :8080 -queue 64 -workers 8 -cache 256
//
// With -data the daemon is durable: results persist in a
// content-addressed on-disk store (served byte-identical across
// restarts without re-simulation) and admitted jobs are journaled, so
// a crash-restart cycle on the same directory re-enqueues every job
// that had not finished:
//
//	slacksimd -addr :8080 -data /var/lib/slacksim
//
// With -coordinator the daemon registers itself as a fleet worker
// (slacksimfleet) after its listener is up, and deregisters before
// draining on shutdown so the coordinator stops routing new work at it
// while accepted jobs still finish:
//
//	slacksimd -addr :8081 -coordinator http://fleet:9090 -id node1 \
//	    -advertise http://node1:8081
//
// Submit work with the Go client (slacksim/client), sweep -server, or
// plain curl:
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"fft","scheme":"s8"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"slacksim/internal/durable"
	"slacksim/internal/fleet"
	"slacksim/internal/service/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queue    = flag.Int("queue", 64, "pending-job queue depth (admission bound)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 128, "result cache entries")
		progress = flag.Int64("progress-every", 256, "min cycles between SSE progress events")
		stall    = flag.Duration("stall", 30*time.Second, "per-run stall watchdog timeout")
		drain    = flag.Duration("drain-timeout", 60*time.Second, "max time to finish accepted jobs on shutdown")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
		coord    = flag.String("coordinator", "", "fleet coordinator base URL to join (e.g. http://fleet:9090)")
		advert   = flag.String("advertise", "", "base URL the coordinator should reach this worker at (default http://<hostname><addr>)")
		workerID = flag.String("id", "", "worker ID to register under (default the hostname)")
		dataDir  = flag.String("data", "", "durable state directory (persistent result store + crash-recoverable job journal); empty = in-memory only")
	)
	flag.Parse()

	cfg := server.Config{
		QueueDepth:    *queue,
		Workers:       *workers,
		CacheSize:     *cache,
		ProgressEvery: *progress,
		StallTimeout:  *stall,
		Pprof:         *pprofOn,
	}

	var (
		store   *durable.Store
		journal *durable.Journal
		pending []durable.PendingJob
	)
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("data dir: %v", err)
		}
		var err error
		store, err = durable.OpenStore(filepath.Join(*dataDir, "store"), durable.StoreOptions{})
		if err != nil {
			log.Fatalf("open result store: %v", err)
		}
		journal, pending, err = durable.OpenJournal(filepath.Join(*dataDir, "journal.wal"))
		if err != nil {
			log.Fatalf("open job journal: %v", err)
		}
		cfg.Cache = durable.NewResultCache(store, *cache)
		cfg.Journal = journal
		st := store.Stats()
		log.Printf("durable state at %s (%d stored results, %d journaled jobs to recover)",
			*dataDir, st.Entries, len(pending))
	}

	s := server.New(cfg)
	if len(pending) > 0 {
		log.Printf("recovered %d unfinished jobs from the journal", s.Recover(pending))
	}
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("slacksimd listening on %s (queue=%d workers=%d cache=%d)",
		*addr, *queue, *workers, *cache)

	// Join the fleet only after the listener is up, so the coordinator's
	// first health probe finds a live /v1/healthz.
	if *coord != "" {
		id, url := workerIdentity(*workerID, *advert, *addr)
		jctx, jcancel := context.WithTimeout(ctx, 10*time.Second)
		if err := fleet.Join(jctx, *coord, id, url); err != nil {
			jcancel()
			log.Fatalf("fleet join: %v", err)
		}
		jcancel()
		log.Printf("joined fleet %s as %q (advertising %s)", *coord, id, url)
	}

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Leave the fleet BEFORE draining: the coordinator must stop routing
	// new jobs here while the jobs already accepted still run to
	// completion and stay retrievable for their waiting dispatches.
	if *coord != "" {
		id, _ := workerIdentity(*workerID, *advert, *addr)
		lctx, lcancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := fleet.Leave(lctx, *coord, id); err != nil {
			log.Printf("fleet leave: %v", err)
		} else {
			log.Printf("left fleet %s", *coord)
		}
		lcancel()
	}

	// Graceful drain: stop admitting, finish every accepted job, then
	// close the listener. Results stay retrievable until the very end.
	log.Printf("shutdown: draining (timeout %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
	}
	if store != nil {
		if err := store.Close(); err != nil {
			log.Printf("store close: %v", err)
		}
	}
	log.Printf("slacksimd stopped")
}

// workerIdentity resolves the -id and -advertise defaults from the
// hostname and listen address.
func workerIdentity(id, advertise, addr string) (string, string) {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "localhost"
	}
	if id == "" {
		id = host
	}
	if advertise == "" {
		if strings.HasPrefix(addr, ":") {
			advertise = fmt.Sprintf("http://%s%s", host, addr)
		} else {
			advertise = "http://" + addr
		}
	}
	return id, advertise
}
