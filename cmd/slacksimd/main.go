// Command slacksimd serves slack simulations over HTTP: a bounded job
// queue with 429 backpressure, a content-addressed result cache, SSE
// progress streaming, and graceful drain on SIGTERM (accepted jobs run
// to completion before the process exits).
//
//	slacksimd -addr :8080 -queue 64 -workers 8 -cache 256
//
// Submit work with the Go client (slacksim/client), sweep -server, or
// plain curl:
//
//	curl -s localhost:8080/v1/jobs -d '{"workload":"fft","scheme":"s8"}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"slacksim/internal/service/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queue    = flag.Int("queue", 64, "pending-job queue depth (admission bound)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		cache    = flag.Int("cache", 128, "result cache entries")
		progress = flag.Int64("progress-every", 256, "min cycles between SSE progress events")
		stall    = flag.Duration("stall", 30*time.Second, "per-run stall watchdog timeout")
		drain    = flag.Duration("drain-timeout", 60*time.Second, "max time to finish accepted jobs on shutdown")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")
	)
	flag.Parse()

	s := server.New(server.Config{
		QueueDepth:    *queue,
		Workers:       *workers,
		CacheSize:     *cache,
		ProgressEvery: *progress,
		StallTimeout:  *stall,
		Pprof:         *pprofOn,
	})
	hs := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("slacksimd listening on %s (queue=%d workers=%d cache=%d)",
		*addr, *queue, *workers, *cache)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting, finish every accepted job, then
	// close the listener. Results stay retrievable until the very end.
	log.Printf("shutdown: draining (timeout %v)", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := s.Drain(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("slacksimd stopped")
}
