// Command sweep runs a workload × scheme grid and emits one TSV row per
// run, for plotting or regression tracking.
//
//	sweep -workloads fft,lu -bounds 1,4,16,64 -su -cc
//	sweep -workloads water -bounds 8 -seeds 5
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"slacksim"
)

func main() {
	var (
		workloads = flag.String("workloads", "barnes,fft,lu,water", "comma-separated workloads")
		bounds    = flag.String("bounds", "1,2,4,8,16,32,64", "comma-separated slack bounds")
		withCC    = flag.Bool("cc", true, "include cycle-by-cycle")
		withSU    = flag.Bool("su", true, "include unbounded slack")
		scale     = flag.Int("scale", 1, "workload input scale")
		cores     = flag.Int("cores", 8, "target cores")
		seeds     = flag.Int("seeds", 1, "number of seeds per configuration")
	)
	flag.Parse()

	var schemes []slacksim.Scheme
	if *withCC {
		schemes = append(schemes, slacksim.Schemes.CC())
	}
	for _, f := range strings.Split(*bounds, ",") {
		b, err := strconv.ParseInt(strings.TrimSpace(f), 10, 64)
		if err != nil {
			log.Fatalf("bad bound %q: %v", f, err)
		}
		schemes = append(schemes, slacksim.Schemes.Bounded(b))
	}
	if *withSU {
		schemes = append(schemes, slacksim.Schemes.Unbounded())
	}

	fmt.Println("workload\tscheme\tseed\tcycles\tinsts\tcpi\tbus_viol\tmap_viol\tbus_rate\tmap_rate\thost_work\twall_s")
	for _, wl := range strings.Split(*workloads, ",") {
		wl = strings.TrimSpace(wl)
		for _, sch := range schemes {
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				sim, err := slacksim.New(slacksim.Config{
					Workload: wl, Scale: *scale, Cores: *cores,
					Scheme: sch, Seed: seed,
				})
				if err != nil {
					log.Fatal(err)
				}
				r, err := sim.Run()
				if err != nil {
					log.Fatal(err)
				}
				if err := sim.Verify(); err != nil {
					log.Fatalf("%s/%s seed %d: functional check failed: %v",
						wl, sch.Name(), seed, err)
				}
				fmt.Printf("%s\t%s\t%d\t%d\t%d\t%.3f\t%d\t%d\t%.6f\t%.6f\t%.0f\t%.3f\n",
					wl, r.Scheme, seed, r.Cycles, r.Committed, r.CPI,
					r.BusViolations, r.MapViolations, r.BusRate, r.MapRate,
					r.HostWorkUnits, r.WallClock.Seconds())
			}
		}
	}
}
