// Command sweep runs a workload × scheme grid and emits one TSV row per
// run, for plotting or regression tracking.
//
//	sweep -workloads fft,lu -bounds 1,4,16,64 -su -cc
//	sweep -workloads water -bounds 8 -seeds 5
//	sweep -workloads fft,barnes -schemes q100,p2p50,adaptive
//	sweep -workloads fft -bounds 8,32 -server http://localhost:8080
//	sweep -workloads synth -synth pattern=migratory,locks=8
//
// A run that fails (bad config, engine error, functional check) emits a
// row with the error column set; the rest of the grid still runs and
// sweep exits nonzero.
//
// With -server the grid is submitted to a slacksimd instance instead of
// running in-process: submissions go out concurrently (the daemon's
// queue applies backpressure; sweep retries on 429) and rows print in
// grid order. Identical cells hit the daemon's result cache.
//
// -fleet targets a slacksimfleet coordinator the same way — the
// coordinator speaks the identical /v1/jobs protocol and fans the grid
// out across its registered workers:
//
//	sweep -workloads fft -bounds 8,32 -fleet http://localhost:9090
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"slacksim"
	"slacksim/client"
	"slacksim/internal/spec"
	"slacksim/internal/synth"
)

type cell struct {
	spec spec.Spec
	res  *slacksim.Results
	err  error
}

func main() {
	var (
		workloads  = flag.String("workloads", "barnes,fft,lu,water", "comma-separated workloads")
		bounds     = flag.String("bounds", "1,2,4,8,16,32,64", "comma-separated slack bounds (s<N> schemes)")
		withCC     = flag.Bool("cc", true, "include cycle-by-cycle")
		withSU     = flag.Bool("su", true, "include unbounded slack")
		extra      = flag.String("schemes", "", "extra comma-separated schemes: cc, s<N>, su, q<N>, p2p<N>, adaptive")
		scale      = flag.Int("scale", 1, "workload input scale")
		cores      = flag.Int("cores", 8, "target cores")
		seeds      = flag.Int("seeds", 1, "number of seeds per configuration")
		synthCfg   = flag.String("synth", "", "config for \"synth\" grid entries (comma-separated k=v; empty = generator defaults)")
		serverURL  = flag.String("server", "", "submit runs to a slacksimd instance at this base URL instead of running in-process")
		fleetURL   = flag.String("fleet", "", "submit runs to a slacksimfleet coordinator at this base URL (same wire protocol as -server)")
		timeoutDur = flag.Duration("timeout", 10*time.Minute, "overall deadline in -server/-fleet mode")
	)
	flag.Parse()
	if *fleetURL != "" {
		if *serverURL != "" {
			log.Fatal("use -server or -fleet, not both")
		}
		// The coordinator speaks the identical /v1/jobs API; -fleet exists
		// so invocations document which topology they expect.
		*serverURL = *fleetURL
	}

	var schemes []string
	if *withCC {
		schemes = append(schemes, "cc")
	}
	for _, f := range strings.Split(*bounds, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if _, err := strconv.ParseInt(f, 10, 64); err != nil {
			log.Fatalf("bad bound %q: %v", f, err)
		}
		schemes = append(schemes, "s"+f)
	}
	if *withSU {
		schemes = append(schemes, "su")
	}
	for _, f := range strings.Split(*extra, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		if _, err := spec.ParseScheme(f, 0, 0); err != nil {
			log.Fatal(err)
		}
		schemes = append(schemes, f)
	}

	var synthConf *synth.Config
	if *synthCfg != "" {
		c, err := synth.ParseConfig(*synthCfg)
		if err != nil {
			log.Fatal(err)
		}
		synthConf = &c
	}

	var cells []*cell
	for _, wl := range strings.Split(*workloads, ",") {
		wl = strings.TrimSpace(wl)
		for _, sch := range schemes {
			for seed := int64(1); seed <= int64(*seeds); seed++ {
				sp := spec.Spec{
					Workload: wl, Scale: *scale, Cores: *cores,
					Scheme: sch, Seed: seed,
				}
				if wl == "synth" {
					sp.Synth = synthConf
				}
				cells = append(cells, &cell{spec: sp})
			}
		}
	}

	if *serverURL != "" {
		runRemote(cells, *serverURL, *timeoutDur)
	} else {
		runLocal(cells)
	}

	fmt.Println("workload\tscheme\tseed\tcycles\tinsts\tcpi\tbus_viol\tmap_viol\tbus_rate\tmap_rate\thost_work\twall_s\terror")
	failed := 0
	for _, c := range cells {
		if c.err != nil {
			failed++
			fmt.Printf("%s\t%s\t%d\t-\t-\t-\t-\t-\t-\t-\t-\t-\t%s\n",
				c.spec.Workload, c.spec.Scheme, c.spec.Seed,
				strings.ReplaceAll(c.err.Error(), "\t", " "))
			continue
		}
		r := c.res
		fmt.Printf("%s\t%s\t%d\t%d\t%d\t%.3f\t%d\t%d\t%.6f\t%.6f\t%.0f\t%.3f\t\n",
			c.spec.Workload, r.Scheme, c.spec.Seed, r.Cycles, r.Committed, r.CPI,
			r.BusViolations, r.MapViolations, r.BusRate, r.MapRate,
			r.HostWorkUnits, r.WallClock.Seconds())
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "sweep: %d of %d runs failed\n", failed, len(cells))
		os.Exit(1)
	}
}

// runLocal executes every cell in-process, sequentially (runs are
// CPU-bound; the parallel host already uses all cores).
func runLocal(cells []*cell) {
	for _, c := range cells {
		c.res, c.err = runOne(c.spec)
	}
}

func runOne(sp spec.Spec) (*slacksim.Results, error) {
	cfg, err := sp.Config()
	if err != nil {
		return nil, err
	}
	sim, err := slacksim.New(cfg)
	if err != nil {
		return nil, err
	}
	r, err := sim.Run()
	if err != nil {
		return nil, err
	}
	if err := sim.Verify(); err != nil {
		return nil, fmt.Errorf("functional check failed: %w", err)
	}
	return &r, nil
}

// runRemote submits every cell to a slacksimd instance concurrently and
// waits for all of them. SubmitWait retries on 429 backpressure, so the
// grid can be arbitrarily larger than the daemon's queue.
func runRemote(cells []*cell, base string, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	c := client.New(base)
	if err := c.Healthz(ctx); err != nil {
		log.Fatalf("server %s not healthy: %v", base, err)
	}
	var wg sync.WaitGroup
	for _, cl := range cells {
		wg.Add(1)
		go func(cl *cell) {
			defer wg.Done()
			j, err := c.SubmitWait(ctx, cl.spec, 100*time.Millisecond)
			if err != nil {
				cl.err = err
				return
			}
			if j.State != "done" {
				cl.err = fmt.Errorf("job %s %s: %s", j.ID, j.State, j.Error)
				return
			}
			cl.res = j.Result
		}(cl)
	}
	wg.Wait()
}
