// Command stress hammers the goroutine-parallel host with randomized
// short configurations — scheme × core count × checkpoint interval × seed
// — and checks liveness (every run terminates under the stall watchdog),
// the MaxCycles horizon invariant, functional correctness, and
// cycle-for-cycle parallel-vs-deterministic equivalence for the CC
// scheme. It is the long-running companion of the in-tree harness
// (internal/engine/stress_test.go); run it under the race detector for
// the full effect:
//
//	go run -race ./cmd/stress -n 500
//	go run -race ./cmd/stress -n 0 -seed 7   # edge scenarios only
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"slacksim/internal/stress"
)

func main() {
	var (
		n       = flag.Int("n", 200, "randomized scenarios to run (on top of the fixed edge scenarios)")
		seed    = flag.Int64("seed", 0, "generator seed (0 = derive from the clock)")
		stall   = flag.Duration("stall", 20*time.Second, "per-run stall watchdog budget")
		keepOn  = flag.Bool("keep-going", false, "keep running after a failure and report the total")
		verbose = flag.Bool("v", false, "log every scenario, not just failures")
	)
	flag.Parse()
	if *seed == 0 {
		*seed = time.Now().UnixNano()
	}
	fmt.Printf("stress: seed=%d n=%d stall=%v\n", *seed, *n, *stall)
	rng := rand.New(rand.NewSource(*seed))

	cfgs := stress.Edges()
	for i := 0; i < *n; i++ {
		// Two equivalence draws per liveness draw: cross-host divergence
		// is the highest-value failure the harness can catch.
		if i%3 == 2 {
			cfgs = append(cfgs, stress.Random(rng))
		} else {
			cfgs = append(cfgs, stress.RandomEquivalence(rng))
		}
	}

	start := time.Now()
	failures, equiv := 0, 0
	for i, cfg := range cfgs {
		cfg.StallTimeout = *stall
		res, err := stress.Execute(cfg)
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "FAIL %4d {%s}\n  %v\n", i, cfg, err)
			if !*keepOn {
				os.Exit(1)
			}
			continue
		}
		if res.Det != nil {
			equiv++
		}
		if *verbose {
			fmt.Printf("ok   %4d {%s} cycles=%d committed=%d\n",
				i, cfg, res.Par.Cycles, res.Par.Committed)
		}
	}
	fmt.Printf("stress: %d scenarios (%d equivalence-checked) in %v, %d failures\n",
		len(cfgs), equiv, time.Since(start).Round(time.Millisecond), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
