// Package client is the Go client for slacksimd, the slacksim
// simulation service. It speaks the /v1 JSON API: submit run specs, poll
// or stream job progress, cancel jobs, and read service stats. Specs are
// the same canonical run description the CLIs use (internal/spec), so a
// grid sweep can switch between in-process runs and service submissions
// without translating anything.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"slacksim"
	"slacksim/internal/service/jobqueue"
	"slacksim/internal/spec"
)

// Spec is the canonical run specification (see internal/spec).
type Spec = spec.Spec

// Job mirrors the service's job view.
type Job struct {
	ID        string             `json:"id"`
	State     string             `json:"state"`
	Key       string             `json:"key"`
	Spec      Spec               `json:"spec"`
	Cached    bool               `json:"cached,omitempty"`
	Coalesced bool               `json:"coalesced,omitempty"`
	Progress  *slacksim.Progress `json:"progress,omitempty"`
	Result    *slacksim.Results  `json:"result,omitempty"`
	Error     string             `json:"error,omitempty"`
	// Detail carries runner-specific extras verbatim: against a fleet
	// coordinator it is the job's per-attempt dispatch history.
	Detail json.RawMessage `json:"detail,omitempty"`
}

// Terminal reports whether the job reached a final state.
func (j *Job) Terminal() bool {
	switch j.State {
	case jobqueue.Done.String(), jobqueue.Failed.String(),
		jobqueue.Cancelled.String(), jobqueue.Migrated.String():
		return true
	}
	return false
}

// RetryError reports a 429 admission rejection with the server's
// suggested backoff. After is zero when the server sent no (or an
// unusable) Retry-After header; retry loops must treat zero as
// "unknown" and apply their own floor, never as "retry immediately".
type RetryError struct {
	After time.Duration
	Msg   string
}

// minRetryBackoff is the floor applied to 429 retry sleeps. A
// RetryError whose After is zero (server omitted Retry-After, or an
// intermediary stripped it) must not turn SubmitWait into a tight
// submit loop against an already-saturated server.
const minRetryBackoff = 250 * time.Millisecond

// retryBackoff returns the sleep before the next attempt after a 429:
// the server's suggestion when it is at least the floor, otherwise a
// jittered floor (uniform in [0.5x, 1.5x)) so a burst of rejected
// submitters does not come back in lockstep.
func retryBackoff(after time.Duration) time.Duration {
	if after >= minRetryBackoff {
		return after
	}
	return minRetryBackoff/2 + rand.N(minRetryBackoff)
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("server busy (retry after %v): %s", e.After, e.Msg)
}

// StatusError reports a non-429 HTTP error response with its status
// code, so callers (the fleet coordinator in particular) can tell a
// permanent rejection (4xx: bad spec, unknown job) from a server-side
// failure (5xx) worth retrying on another worker.
type StatusError struct {
	Code   int
	Status string
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("%s: %s", e.Status, e.Msg)
}

// Temporary reports whether the error is worth retrying (5xx).
func (e *StatusError) Temporary() bool { return e.Code >= 500 }

// Option adjusts a single request.
type Option func(*reqOptions)

type reqOptions struct {
	timeout time.Duration
}

// WithTimeout bounds one request (and, for Wait/SubmitWait, each HTTP
// round trip inside it) without touching the caller's context.
func WithTimeout(d time.Duration) Option {
	return func(o *reqOptions) { o.timeout = d }
}

// apply resolves the options and returns a possibly-derived context
// plus its cancel func (a no-op when no timeout was requested).
func apply(ctx context.Context, opts []Option) (context.Context, context.CancelFunc) {
	var o reqOptions
	for _, opt := range opts {
		opt(&o)
	}
	if o.timeout > 0 {
		return context.WithTimeout(ctx, o.timeout)
	}
	return ctx, func() {}
}

// Event is one SSE frame from a job's event stream.
type Event struct {
	// Name is "progress" or a terminal state ("done", "failed", "cancelled").
	Name string
	// Data is the raw JSON payload (a Progress or a Job).
	Data []byte
}

// Client talks to one slacksimd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for the given base URL (e.g. "http://localhost:8080").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// NewWithHTTPClient builds a client using a custom http.Client (tests,
// custom transports, timeouts).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: hc}
}

func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		// Report the server's suggestion verbatim; a missing or
		// unparseable Retry-After yields After == 0 ("unknown"), and the
		// retry loops are responsible for flooring it.
		var after time.Duration
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			after = time.Duration(v) * time.Second
		}
		return &RetryError{After: after, Msg: errBody(blob)}
	}
	if resp.StatusCode >= 400 {
		return &StatusError{
			Code:   resp.StatusCode,
			Status: fmt.Sprintf("client: %s %s: %s", method, path, resp.Status),
			Msg:    errBody(blob),
		}
	}
	if out != nil {
		return json.Unmarshal(blob, out)
	}
	return nil
}

func errBody(blob []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(blob, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(blob))
}

// Submit posts a run spec. A full queue returns a *RetryError.
func (c *Client) Submit(ctx context.Context, sp Spec, opts ...Option) (*Job, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	var j Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", sp, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Get fetches a job's current state.
func (c *Client) Get(ctx context.Context, id string, opts ...Option) (*Job, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	var j Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string, opts ...Option) (*Job, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	var j Job
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Migrate asks the server to checkpoint-migrate a job: pending jobs are
// ejected immediately, running jobs stop at their next checkpoint and
// export their state. Poll (or Wait) until the job reports "migrated",
// then fetch the exported state with Snapshot.
func (c *Client) Migrate(ctx context.Context, id string, opts ...Option) (*Job, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	var j Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/migrate", nil, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Snapshot fetches a migrated job's exported state (a durable snapshot
// container); pass it to Resume on another server to continue the run.
// A job migrated while still pending has no snapshot (404): restart it
// from its spec instead.
func (c *Client) Snapshot(ctx context.Context, id string, opts ...Option) ([]byte, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/snapshot", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{
			Code:   resp.StatusCode,
			Status: fmt.Sprintf("client: GET /v1/jobs/%s/snapshot: %s", id, resp.Status),
			Msg:    errBody(blob),
		}
	}
	return blob, nil
}

// Resume submits an exported snapshot; the server continues the run
// from its checkpoint (or serves the cached result if it already has
// one). A full queue returns a *RetryError, like Submit.
func (c *Client) Resume(ctx context.Context, snapshot []byte, opts ...Option) (*Job, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/resume", bytes.NewReader(snapshot))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		var after time.Duration
		if v, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && v > 0 {
			after = time.Duration(v) * time.Second
		}
		return nil, &RetryError{After: after, Msg: errBody(blob)}
	}
	if resp.StatusCode >= 400 {
		return nil, &StatusError{
			Code:   resp.StatusCode,
			Status: fmt.Sprintf("client: POST /v1/resume: %s", resp.Status),
			Msg:    errBody(blob),
		}
	}
	var j Job
	if err := json.Unmarshal(blob, &j); err != nil {
		return nil, err
	}
	return &j, nil
}

// Evacuate asks the server to hand off all its work: pending jobs are
// ejected, running jobs checkpoint-migrate. Returns the affected job ids.
func (c *Client) Evacuate(ctx context.Context, opts ...Option) (ejected, migrating []string, err error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	var v struct {
		Ejected   []string `json:"ejected"`
		Migrating []string `json:"migrating"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/evacuate", nil, &v); err != nil {
		return nil, nil, err
	}
	return v.Ejected, v.Migrating, nil
}

// Wait polls a job until it is terminal or ctx expires; cancellation is
// honored promptly even mid-sleep. A 429 on a poll (an overloaded
// server shedding reads) is not terminal: Wait backs off — with the
// same floor as SubmitWait — and keeps polling. Options bound each poll
// round trip, not the overall wait.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration, opts ...Option) (*Job, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	tick := time.NewTicker(poll)
	defer tick.Stop()
	for {
		j, err := c.Get(ctx, id, opts...)
		var re *RetryError
		if errors.As(err, &re) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(retryBackoff(re.After)):
				continue
			}
		}
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return j, nil
		}
		select {
		case <-ctx.Done():
			return j, ctx.Err()
		case <-tick.C:
		}
	}
}

// SubmitWait submits with 429 backoff (honoring Retry-After when the
// server sent one, never sleeping less than a jittered minimum, and
// never outliving ctx: the sleep selects on ctx.Done) and then waits
// for the job to finish: one call that behaves like a local run.
// Options bound each HTTP round trip.
func (c *Client) SubmitWait(ctx context.Context, sp Spec, poll time.Duration, opts ...Option) (*Job, error) {
	for {
		j, err := c.Submit(ctx, sp, opts...)
		var re *RetryError
		if errors.As(err, &re) {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(retryBackoff(re.After)):
				continue
			}
		}
		if err != nil {
			return nil, err
		}
		if j.Terminal() {
			return j, nil
		}
		return c.Wait(ctx, j.ID, poll, opts...)
	}
}

// Events streams a job's SSE feed, invoking fn per event until the
// stream ends (after the terminal event), fn returns an error, or ctx
// expires. Returning io.EOF from fn stops the stream without error.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("client: events %s: %s: %s", id, resp.Status, errBody(blob))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ev Event
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && ev.Name != "":
			if err := fn(ev); err != nil {
				if errors.Is(err, io.EOF) {
					return nil
				}
				return err
			}
			ev = Event{}
		}
	}
	return sc.Err()
}

// Statsz fetches the service counters as loosely-typed JSON.
func (c *Client) Statsz(ctx context.Context, opts ...Option) (map[string]any, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	var v map[string]any
	if err := c.do(ctx, http.MethodGet, "/v1/statsz", nil, &v); err != nil {
		return nil, err
	}
	return v, nil
}

// Healthz returns nil when the service is accepting work.
func (c *Client) Healthz(ctx context.Context, opts ...Option) error {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// Metrics fetches the Prometheus text exposition from GET /metrics as
// raw bytes; the fleet coordinator parses it for load-aware routing.
func (c *Client) Metrics(ctx context.Context, opts ...Option) ([]byte, error) {
	ctx, cancel := apply(ctx, opts)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{
			Code:   resp.StatusCode,
			Status: fmt.Sprintf("client: GET /metrics: %s", resp.Status),
			Msg:    errBody(blob),
		}
	}
	return blob, nil
}
