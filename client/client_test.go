package client_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"slacksim/client"
	"slacksim/internal/spec"
)

func testSpec() spec.Spec {
	return spec.Spec{Workload: "fft", Scheme: "s8", Cores: 2, Seed: 1}
}

// TestSubmitWait429BackoffHonorsContext: a server that keeps answering
// 429 with a long Retry-After must not pin SubmitWait past its context
// — the backoff sleep has to give up the moment the context ends.
func TestSubmitWait429BackoffHonorsContext(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer hs.Close()
	c := client.New(hs.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SubmitWait(ctx, testSpec(), time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("SubmitWait slept %v into a 30s Retry-After after its context expired", since)
	}
}

// TestSubmitWaitBackoffFloorNoRetryAfter: a server answering 429
// WITHOUT a Retry-After header yields RetryError.After == 0; SubmitWait
// must apply its jittered minimum backoff instead of hot-looping the
// submit against the saturated server.
func TestSubmitWaitBackoffFloorNoRetryAfter(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		// Deliberately no Retry-After header.
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"queue full"}`))
	}))
	defer hs.Close()
	c := client.New(hs.URL)

	ctx, cancel := context.WithTimeout(context.Background(), 700*time.Millisecond)
	defer cancel()
	_, err := c.SubmitWait(ctx, testSpec(), time.Millisecond)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The jittered floor sleeps at least 125ms between attempts, so a
	// 700ms window admits at most ~6 submits. A tight loop (the bug:
	// time.After(0) fires immediately) racks up thousands.
	if n := hits.Load(); n < 2 || n > 10 {
		t.Fatalf("server saw %d submits in 700ms; want a handful (backoff floor), not a tight loop", n)
	}
}

// TestSubmitWaitRecoversAfter429: the backoff loop is not just a delay
// — once the server has capacity again, SubmitWait goes through.
func TestSubmitWaitRecoversAfter429(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests) // no Retry-After
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"id": "j1", "state": "done"})
	}))
	defer hs.Close()
	c := client.New(hs.URL)

	start := time.Now()
	j, err := c.SubmitWait(context.Background(), testSpec(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID != "j1" || !j.Terminal() {
		t.Fatalf("job = %+v, want terminal j1", j)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d submits, want 3 (two 429s, one accept)", n)
	}
	// Two floored sleeps of at least 125ms each must have elapsed.
	if since := time.Since(start); since < 250*time.Millisecond {
		t.Fatalf("SubmitWait returned in %v; two jittered-floor backoffs should take >= 250ms", since)
	}
}

// TestWaitBacksOffOn429: a 429 on a poll round trip is transient — Wait
// keeps polling (with the backoff floor) instead of failing the wait.
func TestWaitBacksOffOn429(t *testing.T) {
	var hits atomic.Int32
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.WriteHeader(http.StatusTooManyRequests) // no Retry-After
			return
		}
		_ = json.NewEncoder(w).Encode(map[string]any{"id": "j1", "state": "done"})
	}))
	defer hs.Close()
	j, err := client.New(hs.URL).Wait(context.Background(), "j1", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Terminal() {
		t.Fatalf("job = %+v, want terminal", j)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d polls, want 3", n)
	}
}

// TestWaitHonorsContextMidPoll: cancelling the context while Wait is
// between polls of a never-finishing job returns promptly.
func TestWaitHonorsContextMidPoll(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]any{"id": "j1", "state": "running"})
	}))
	defer hs.Close()
	c := client.New(hs.URL)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Wait(ctx, "j1", 10*time.Second) // poll far longer than the cancel
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context canceled", err)
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("Wait returned after %v, expected prompt cancellation", since)
	}
}

// TestWithTimeoutBoundsARequest: WithTimeout caps one round trip
// against a hung server without touching the caller's context.
func TestWithTimeoutBoundsARequest(t *testing.T) {
	hang := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-hang
	}))
	defer hs.Close()
	defer close(hang) // LIFO: unblock the handler before Close waits on it
	c := client.New(hs.URL)

	start := time.Now()
	_, err := c.Submit(context.Background(), testSpec(), client.WithTimeout(50*time.Millisecond))
	if err == nil {
		t.Fatal("Submit against a hung server succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("Submit took %v with a 50ms per-request timeout", since)
	}
}

// TestStatusErrorClassification: 5xx is temporary (worth retrying
// elsewhere), other 4xx is permanent, and 429 stays a RetryError.
func TestStatusErrorClassification(t *testing.T) {
	for _, tc := range []struct {
		code      int
		temporary bool
	}{
		{http.StatusInternalServerError, true},
		{http.StatusBadGateway, true},
		{http.StatusBadRequest, false},
		{http.StatusNotFound, false},
	} {
		hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(tc.code)
			_, _ = w.Write([]byte(`{"error":"nope"}`))
		}))
		c := client.New(hs.URL)
		_, err := c.Submit(context.Background(), testSpec())
		hs.Close()
		var se *client.StatusError
		if !errors.As(err, &se) {
			t.Fatalf("code %d: err = %T %v, want *StatusError", tc.code, err, err)
		}
		if se.Code != tc.code || se.Temporary() != tc.temporary {
			t.Fatalf("code %d: got code=%d temporary=%v", tc.code, se.Code, se.Temporary())
		}
		if se.Msg != "nope" {
			t.Fatalf("code %d: msg = %q", tc.code, se.Msg)
		}
	}

	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer hs.Close()
	_, err := client.New(hs.URL).Submit(context.Background(), testSpec())
	var re *client.RetryError
	if !errors.As(err, &re) || re.After != 2*time.Second {
		t.Fatalf("429 err = %v, want RetryError with After=2s", err)
	}
}

// TestMetricsFetch: the raw Prometheus text comes back verbatim.
func TestMetricsFetch(t *testing.T) {
	const body = "# TYPE x gauge\nx 1\n"
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write([]byte(body))
	}))
	defer hs.Close()
	blob, err := client.New(hs.URL).Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != body {
		t.Fatalf("metrics = %q, want %q", blob, body)
	}
}
